//! End-to-end daemon tests that drive the real `neuroplan` binary as a
//! subprocess: round trips, cancellation, SIGTERM exit codes, and the
//! headline robustness claim — `kill -9` the daemon mid-solve, restart
//! it on the same state dir, and get the *bit-identical* plan back.
//!
//! These tests use debug-build timings (quick preset c runs for many
//! seconds), so "kill while running" windows are wide. Every assertion
//! is also valid if a race makes the solve finish first: a journaled
//! `done` terminal must survive restart byte-for-byte too.

use serde_json::{json, Value};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_neuroplan");

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("np-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A daemon subprocess plus the ephemeral address scraped from its
/// startup banner.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(state_dir: &Path, workers: usize) -> Daemon {
        let mut child = Command::new(BIN)
            .arg("serve")
            .arg("--state-dir")
            .arg(state_dir)
            .args(["--workers", &workers.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> np_serve::Client {
        np_serve::Client::connect(&self.addr).expect("connect")
    }

    /// SIGKILL — no flush, no journal terminal, no lock release.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    /// Cooperative shutdown over the protocol; waits for exit.
    fn shutdown(&mut self) {
        let _ = self.client().shutdown();
        self.child.wait().expect("daemon exit");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spec that solves in well under a second even in debug builds.
fn fast_spec(seed: u64) -> Value {
    json!({"preset": "a", "seed": seed})
}

/// Spec that solves in ~10s+ in debug builds — wide enough to land a
/// cancel or a `kill -9` while the worker is mid-solve.
fn slow_spec() -> Value {
    json!({"preset": "c", "seed": 3})
}

fn state_of(status: &Value) -> String {
    status
        .get("state")
        .and_then(|v| v.as_str())
        .unwrap_or("")
        .to_string()
}

/// Poll until the request leaves the queue (or is already terminal).
fn wait_until_active(client: &mut np_serve::Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = state_of(&client.status(id).expect("status"));
        if state != "queued" {
            return state;
        }
        assert!(Instant::now() < deadline, "request {id} never left queue");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The (units, cost_hex) pair that must be bit-stable across restarts.
fn plan_identity(result: &Value) -> (String, String) {
    let body = result.get("result").expect("result body");
    let units = serde_json::to_string(body.get("units").expect("units")).expect("json");
    let cost_hex = body
        .get("cost_hex")
        .and_then(|v| v.as_str())
        .expect("cost_hex")
        .to_string();
    (units, cost_hex)
}

#[test]
fn daemon_round_trip_over_the_binary() {
    let dir = tmp("round-trip");
    let mut daemon = Daemon::start(&dir, 1);
    let mut client = daemon.client();

    let reply = client.submit(&fast_spec(3)).expect("submit");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    let result = client.wait(id, Duration::from_secs(120)).expect("wait");

    assert_eq!(state_of(&result), "done");
    let (units, cost_hex) = plan_identity(&result);
    assert!(!units.is_empty() && !cost_hex.is_empty());
    daemon.shutdown();
}

#[test]
fn cancel_over_the_binary_frees_the_worker() {
    let dir = tmp("cancel");
    let mut daemon = Daemon::start(&dir, 1);
    let mut client = daemon.client();

    let reply = client.submit(&slow_spec()).expect("submit");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    assert_eq!(wait_until_active(&mut client, id), "running");

    client.cancel(id).expect("cancel");
    let cancelled_at = Instant::now();
    let result = client.wait(id, Duration::from_secs(60)).expect("wait");
    assert_eq!(state_of(&result), "cancelled");

    // The single worker must be free again: a fresh fast request has to
    // run to completion, not starve behind a zombie solve.
    let reply = client.submit(&fast_spec(4)).expect("submit follow-up");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    let result = client.wait(id, Duration::from_secs(120)).expect("wait");
    assert_eq!(state_of(&result), "done");

    // Cooperative cancellation means "next stage boundary", not "after
    // the full solve" — far sooner than the ~10s the solve would take.
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(45),
        "cancel took {:?}",
        cancelled_at.elapsed()
    );
    daemon.shutdown();
}

/// kill -9 mid-solve, restart on the same state dir, and the journal
/// replay must finish the request with the exact plan a never-killed
/// daemon produces.
fn kill_nine_recovers(name: &str, workers: usize, submissions: usize) {
    // Reference: the same spec on a pristine daemon, run to completion.
    let ref_dir = tmp(&format!("{name}-ref"));
    let mut reference = Daemon::start(&ref_dir, 1);
    let mut client = reference.client();
    let reply = client.submit(&slow_spec()).expect("submit");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    let expected = plan_identity(&client.wait(id, Duration::from_secs(300)).expect("wait"));
    reference.shutdown();

    // Victim: same spec (several copies under 4 workers), killed hard.
    let dir = tmp(name);
    let mut victim = Daemon::start(&dir, workers);
    let mut client = victim.client();
    let mut ids = Vec::new();
    for _ in 0..submissions {
        let reply = client.submit(&slow_spec()).expect("submit");
        ids.push(np_serve::client::submit_id(&reply).expect("admitted"));
    }
    assert_eq!(wait_until_active(&mut client, ids[0]), "running");
    std::thread::sleep(Duration::from_millis(1500));
    victim.kill9();

    // Restart on the same dir: the stale lock must be broken, the
    // journal replayed, and every admitted request must still reach
    // `done` with the reference plan, bit for bit.
    let mut revived = Daemon::start(&dir, workers);
    let mut client = revived.client();
    for id in ids {
        let result = client.wait(id, Duration::from_secs(600)).expect("wait");
        assert_eq!(state_of(&result), "done", "request {id} after restart");
        assert_eq!(plan_identity(&result), expected, "request {id} diverged");
    }
    revived.shutdown();
}

#[test]
fn kill_nine_then_restart_is_bit_identical_one_worker() {
    kill_nine_recovers("kill9-w1", 1, 1);
}

#[test]
fn kill_nine_then_restart_is_bit_identical_four_workers() {
    kill_nine_recovers("kill9-w4", 4, 4);
}

#[test]
fn finished_result_survives_kill_nine() {
    let dir = tmp("done-survives");
    let mut daemon = Daemon::start(&dir, 1);
    let mut client = daemon.client();
    let reply = client.submit(&fast_spec(7)).expect("submit");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    let first = plan_identity(&client.wait(id, Duration::from_secs(120)).expect("wait"));
    daemon.kill9();

    let mut revived = Daemon::start(&dir, 1);
    let mut client = revived.client();
    let result = client.result(id).expect("result");
    assert_eq!(state_of(&result), "done");
    assert_eq!(plan_identity(&result), first);

    // A journaled terminal is served from the journal — no re-solve, so
    // the answer is available instantly and the queue stays empty.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("queued").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(stats.get("running").and_then(|v| v.as_u64()), Some(0));
    revived.shutdown();
}

#[test]
fn sigterm_mid_plan_exits_with_the_signal_code() {
    let dir = tmp("sigterm-plan");
    let out = dir.join("plan.json");
    let mut child = Command::new(BIN)
        .args(["plan", "--preset", "c", "--seed", "3", "--default"])
        .arg("--checkpoint-dir")
        .arg(dir.join("ckpt"))
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plan");
    std::thread::sleep(Duration::from_secs(2));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let start = Instant::now();
    let status = child.wait().expect("plan exit");
    // 128 + SIGTERM(15): the CLI flushed and exited at a stage boundary
    // instead of being torn down by the default signal disposition.
    assert_eq!(status.code(), Some(143), "expected graceful signal exit");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "exit took {:?} after SIGTERM",
        start.elapsed()
    );
    let mut stderr = String::new();
    use std::io::Read as _;
    child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        stderr.contains("interrupted by signal 15"),
        "stderr was: {stderr}"
    );
    assert!(!out.exists(), "no plan should be written after SIGTERM");
}

#[test]
fn sigterm_stops_the_daemon_resumably() {
    let dir = tmp("sigterm-daemon");
    let mut daemon = Daemon::start(&dir, 1);
    let mut client = daemon.client();
    let reply = client.submit(&slow_spec()).expect("submit");
    let id = np_serve::client::submit_id(&reply).expect("admitted");
    assert_eq!(wait_until_active(&mut client, id), "running");

    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(143), "daemon signal exit code");

    // Graceful shutdown journals *no* terminal for the in-flight run,
    // so a restart resumes it to completion.
    let mut revived = Daemon::start(&dir, 1);
    let mut client = revived.client();
    let result = client.wait(id, Duration::from_secs(600)).expect("wait");
    assert_eq!(state_of(&result), "done");
    revived.shutdown();
}
