//! The two-stage NeuroPlan pipeline (Fig. 2 / Fig. 3).

use crate::checkpoint;
use crate::config::NeuroPlanConfig;
use crate::env::PlanningEnv;
use crate::greedy::greedy_augment;
use crate::master::{apply_units, solve_master_telemetry, MasterConfig, MasterOutcome};
use crate::report::PruningReport;
use np_chaos::checkpoint::{append_record, read_records, Record};
use np_eval::EvalStats;
use np_flow::MetricCut;
use np_rl::{train_resumable, ActorCritic, GraphEnv, TrainProgress, TrainReport, TrainResume};
use np_telemetry::{sys, Telemetry};
use np_topology::Network;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Outputs of the RL stage.
#[derive(Clone, Debug)]
pub struct FirstStage {
    /// Units per link of the initial plan handed to stage 2 (the best RL
    /// plan, or the greedy reference when RL never completed a
    /// trajectory).
    pub units: Vec<u32>,
    /// Cost of that plan.
    pub cost: f64,
    /// Cost of the best plan the **RL agent itself** found (`None` =
    /// "does not converge", the crosses of Fig. 10).
    pub rl_cost: Option<f64>,
    /// Cost of the greedy reference plan (also the reward normalizer).
    pub reference_cost: f64,
    /// Per-epoch training statistics.
    pub report: TrainReport,
    /// Metric-cut certificates harvested from the evaluator.
    pub certificates: Vec<MetricCut>,
    /// Evaluator instrumentation.
    pub stats: EvalStats,
}

/// A complete NeuroPlan run's outputs.
#[derive(Clone, Debug)]
pub struct NeuroPlanResult {
    /// Cost of the best feasible plan the RL stage produced
    /// (*First-stage* in the paper's figures).
    pub first_stage_cost: f64,
    /// Units per link of the first-stage plan.
    pub first_stage_units: Vec<u32>,
    /// Cost after the α-pruned ILP stage (*NeuroPlan* in the figures).
    pub final_cost: f64,
    /// Units per link of the final plan.
    pub final_units: Vec<u32>,
    /// Per-epoch RL training statistics.
    pub train_report: TrainReport,
    /// Second-stage solver outcome.
    pub master: MasterOutcome,
    /// Evaluator instrumentation accumulated across the run.
    pub eval_stats: EvalStats,
    /// The interpretable pruning summary (§4.3).
    pub pruning: PruningReport,
}

/// The NeuroPlan planner.
pub struct NeuroPlan {
    /// Pipeline configuration.
    pub cfg: NeuroPlanConfig,
    /// Telemetry sink threaded through both stages (noop by default).
    pub tel: Telemetry,
    /// Directory for checkpoint records (`None` = no checkpointing). The
    /// pipeline appends to `<dir>/checkpoint.jsonl` — a `meta` record,
    /// one `epoch` record per completed training epoch, a `first_stage`
    /// record and a `master` record (DESIGN.md §10).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from valid records already in `checkpoint_dir`. Resuming a
    /// run killed at any epoch reproduces the uninterrupted run's plan
    /// bit for bit; a checkpoint from a different instance or config is
    /// detected by fingerprint and ignored.
    pub resume: bool,
}

impl NeuroPlan {
    /// New planner with the given configuration.
    pub fn new(cfg: NeuroPlanConfig) -> Self {
        NeuroPlan {
            cfg,
            tel: Telemetry::noop(),
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// New planner reporting through `tel`: stage spans under `pipeline`,
    /// plus the `rl`, `eval`, `master` and `lp` subsystem counters.
    pub fn with_telemetry(cfg: NeuroPlanConfig, tel: Telemetry) -> Self {
        NeuroPlan {
            cfg,
            tel,
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// Write checkpoint records under `dir`; when `resume` is set,
    /// continue from whatever valid records are already there.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, resume: bool) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.resume = resume;
        self
    }

    fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join("checkpoint.jsonl"))
    }

    /// Best-effort record append: a full disk must degrade the run to
    /// "unresumable", never kill it.
    fn append(&self, path: &Path, kind: &str, body: Value, chaos: &np_chaos::Chaos) {
        if let Err(e) = append_record(path, kind, body, chaos) {
            eprintln!("warning: failed to write checkpoint record `{kind}`: {e}");
        }
    }

    /// Run both stages on a planning instance.
    ///
    /// Panics if the instance is structurally infeasible (some protected
    /// demand has no surviving path under some scenario) — the generator
    /// never produces such instances, and a user instance with that
    /// property has no plan at any cost.
    pub fn plan(&self, net: &Network) -> NeuroPlanResult {
        let _plan_span = self.tel.span(sys::PIPELINE, "plan");
        let chaos = np_chaos::global();
        let ckpt = self.checkpoint_path();
        let mut records: Vec<Record> = Vec::new();
        if let Some(path) = &ckpt {
            let fp = checkpoint::fingerprint(net, &self.cfg);
            if self.resume {
                records = read_records(path);
                let matches = records
                    .first()
                    .is_some_and(|r| r.kind == "meta" && checkpoint::meta_matches(&r.body, &fp));
                if !matches && !records.is_empty() {
                    eprintln!(
                        "warning: checkpoint in {} does not match this instance/config; \
                         starting fresh",
                        path.display()
                    );
                    records.clear();
                }
            }
            if records.is_empty() {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::remove_file(path);
                self.append(path, "meta", checkpoint::meta_body(&fp), chaos);
            }
        }
        let epoch_recs: Vec<checkpoint::EpochRecord> = records
            .iter()
            .filter(|r| r.kind == "epoch")
            .filter_map(|r| checkpoint::decode_epoch(&r.body))
            .collect();
        let epoch_stats = TrainReport {
            epochs: epoch_recs.iter().map(|e| e.stats.clone()).collect(),
        };
        let first_rec = records
            .iter()
            .find(|r| r.kind == "first_stage")
            .and_then(|r| checkpoint::decode_first_stage(&r.body, epoch_stats));
        let master_rec = records
            .iter()
            .find(|r| r.kind == "master")
            .and_then(|r| checkpoint::decode_master(&r.body));

        // A run that already finished resumes straight to its recorded
        // result. The pruning report is a pure function of the
        // first-stage plan, so it is recomputed rather than stored.
        if let (Some(first), Some(master)) = (&first_rec, master_rec) {
            let pruning = self.pruning_report(net, &first.units);
            return Self::finish(
                first.cost,
                first.units.clone(),
                first.report.clone(),
                master,
                EvalStats::default(),
                pruning,
            );
        }

        let first = match first_rec {
            Some(first) => first,
            None => {
                let first = self.first_stage_resumable(net, ckpt.as_deref(), epoch_recs, chaos);
                if let Some(path) = &ckpt {
                    self.append(
                        path,
                        "first_stage",
                        checkpoint::first_stage_body(&first),
                        chaos,
                    );
                }
                first
            }
        };
        let FirstStage {
            units: first_units,
            cost: first_cost,
            report: train_report,
            certificates: seed_cuts,
            stats: mut eval_stats,
            ..
        } = first;
        let (master, pruning) =
            self.second_stage(net, &first_units, first_cost, seed_cuts, &mut eval_stats);
        if let Some(path) = &ckpt {
            self.append(path, "master", checkpoint::master_body(&master), chaos);
        }
        Self::finish(
            first_cost,
            first_units,
            train_report,
            master,
            eval_stats,
            pruning,
        )
    }

    /// Final plan selection: the master incumbent when it beats the
    /// first stage, otherwise the first-stage plan itself.
    fn finish(
        first_cost: f64,
        first_units: Vec<u32>,
        train_report: TrainReport,
        master: MasterOutcome,
        eval_stats: EvalStats,
        pruning: PruningReport,
    ) -> NeuroPlanResult {
        let (final_cost, final_units) = if master.has_plan() && master.cost < first_cost {
            (master.cost, master.units.clone())
        } else {
            (first_cost, first_units.clone())
        };
        NeuroPlanResult {
            first_stage_cost: first_cost,
            first_stage_units: first_units,
            final_cost,
            final_units,
            train_report,
            master,
            eval_stats,
            pruning,
        }
    }

    fn pruning_report(&self, net: &Network, first_units: &[u32]) -> PruningReport {
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor)
    }

    /// Stage 1: train the agent and extract the best feasible plan. A
    /// greedy certificate-guided plan provides the reward normalizer and
    /// the fallback if training never completes a trajectory.
    pub fn first_stage(&self, net: &Network) -> FirstStage {
        self.first_stage_resumable(net, None, Vec::new(), np_chaos::global())
    }

    /// [`NeuroPlan::first_stage`], with checkpointing: epoch records are
    /// appended to `ckpt` as training progresses, and `epoch_recs` (the
    /// decoded records of an interrupted run) restore the trainer to the
    /// exact post-epoch state the last record captured.
    fn first_stage_resumable(
        &self,
        net: &Network,
        ckpt: Option<&Path>,
        epoch_recs: Vec<checkpoint::EpochRecord>,
        chaos: &np_chaos::Chaos,
    ) -> FirstStage {
        let _stage_span = self.tel.span(sys::PIPELINE, "first_stage");
        // Reference plan: reward scale + fallback.
        let mut ref_net = net.clone();
        let ref_cost = greedy_augment(&mut ref_net, self.cfg.eval)
            .expect("planning instance must admit a feasible plan");
        let ref_units: Vec<u32> = ref_net
            .link_ids()
            .map(|l| ref_net.link(l).capacity_units)
            .collect();
        let norm = ref_cost.max(1e-6);

        let mut env = PlanningEnv::new(
            net.clone(),
            self.cfg.eval,
            self.cfg.max_units_per_step,
            norm,
        );
        env.evaluator_mut().set_telemetry(self.tel.clone());
        let mut agent = ActorCritic::new(
            env.adjacency().clone(),
            env.feature_dim(),
            self.cfg.max_units_per_step,
            &self.cfg.agent,
        );
        // Restore from the last epoch record, if any. A blob that fails
        // to restore (foreign, corrupt) discards the resume entirely
        // rather than training from a half-restored state.
        let mut resume: Option<TrainResume> = None;
        if let Some(last) = epoch_recs.last() {
            if agent.import_state(&last.agent) && env.restore_state_json(&last.env) {
                // Reconstruct the early-stop decision: if the streak had
                // already reached the patience threshold, the original
                // run stopped after this epoch — the resumed run must
                // not train further.
                let stopped = self.cfg.train.convergence_tol > 0.0
                    && last.converged_run >= self.cfg.train.patience;
                resume = Some(TrainResume {
                    next_epoch: if stopped {
                        self.cfg.train.epochs
                    } else {
                        last.next_epoch
                    },
                    converged_run: last.converged_run,
                    prev_return: last.prev_return,
                    recovery_nonce: last.recovery_nonce,
                    stats: epoch_recs.iter().map(|e| e.stats.clone()).collect(),
                });
            } else {
                eprintln!(
                    "warning: checkpointed trainer state failed to restore; restarting training"
                );
            }
        }
        let report = match ckpt {
            Some(path) => {
                let mut hook =
                    |agent: &mut ActorCritic, env: &mut dyn GraphEnv, p: &TrainProgress<'_>| {
                        let agent_blob = agent.export_state();
                        let env_blob = env.state_json().unwrap_or_default();
                        self.append(
                            path,
                            "epoch",
                            checkpoint::epoch_body(p, &agent_blob, &env_blob),
                            chaos,
                        );
                    };
                train_resumable(
                    &mut env,
                    &mut agent,
                    &self.cfg.train,
                    &self.tel,
                    chaos,
                    resume,
                    Some(&mut hook),
                )
            }
            None => train_resumable(
                &mut env,
                &mut agent,
                &self.cfg.train,
                &self.tel,
                chaos,
                resume,
                None,
            ),
        };

        // Final rollouts: stochastic samples plus one greedy decode.
        agent.reseed_sampling(self.cfg.seed ^ 0xdead_beef);
        let rollout_cap = self.cfg.train.max_traj_len * 4;
        for k in 0..=self.cfg.final_rollouts {
            let greedy_decode = k == self.cfg.final_rollouts;
            let mut obs = env.reset();
            for _ in 0..rollout_cap {
                if !obs.has_valid_action() {
                    break;
                }
                let action = if greedy_decode {
                    agent.act_greedy(&obs.features, &obs.action_mask)
                } else {
                    agent.act(&obs.features, &obs.action_mask).0
                };
                let (o, _, done) = env.step(action);
                obs = o;
                if done {
                    break;
                }
            }
        }

        let rl_best = env.best_plan().cloned();
        let rl_cost = rl_best.as_ref().map(|(c, _)| *c);
        let (cost, units) = match rl_best {
            Some((cost, snap)) if cost <= ref_cost => (cost, snap.as_slice().to_vec()),
            _ => (ref_cost, ref_units),
        };
        // Harvest every certificate the evaluator collected: free,
        // already-validated rows for the master.
        let evaluator = env.evaluator_mut();
        let certs: Vec<MetricCut> = (0..evaluator.num_scenarios())
            .filter_map(|i| evaluator.certificate(i).cloned())
            .collect();
        let stats = evaluator.take_stats();
        FirstStage {
            units,
            cost,
            rl_cost,
            reference_cost: ref_cost,
            report,
            certificates: certs,
            stats,
        }
    }

    /// Stage 2: α-pruned ILP around the first-stage plan.
    pub fn second_stage(
        &self,
        net: &Network,
        first_units: &[u32],
        first_cost: f64,
        seed_cuts: Vec<MetricCut>,
        eval_stats: &mut EvalStats,
    ) -> (MasterOutcome, PruningReport) {
        let _stage_span = self.tel.span(sys::PIPELINE, "second_stage");
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        let pruning =
            PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor);
        let mut evaluator =
            np_eval::PlanEvaluator::with_telemetry(net, self.cfg.eval, self.tel.clone());
        let cfg = MasterConfig {
            upper_bounds: bounds,
            // The first-stage plan is feasible inside the pruned bounds, so
            // its cost (plus slack for ties) is a valid cutoff.
            cutoff: Some(first_cost * (1.0 + 1e-9) + 1e-9),
            node_limit: self.cfg.mip_node_limit,
            time_limit_secs: self.cfg.mip_time_limit_secs,
            max_cuts_per_round: 8,
            seed_cuts,
            granularity: 1,
            gap_tol: MasterConfig::DEFAULT_GAP,
            // Stage 2 starts from the first-stage plan: polish it, use it
            // as the incumbent, never return anything worse.
            warm_units: Some(first_units.to_vec()),
        };
        let outcome = solve_master_telemetry(net, &mut evaluator, &cfg, &self.tel);
        eval_stats.merge(&evaluator.take_stats());
        (outcome, pruning)
    }
}

/// Validate a finished plan end-to-end with a fresh exact evaluator —
/// harnesses call this before trusting any reported cost.
pub fn validate_plan(net: &Network, units: &[u32]) -> bool {
    let mut check = net.clone();
    apply_units(&mut check, units);
    let mut evaluator = np_eval::PlanEvaluator::new(&check, self_exact());
    evaluator.check_network(&check).feasible
}

fn self_exact() -> np_eval::EvalConfig {
    np_eval::EvalConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeuroPlanConfig;
    use np_topology::generator::GeneratorConfig;

    fn quick_plan(fill: f64) -> (Network, NeuroPlanResult) {
        let net = GeneratorConfig::a_variant(fill).generate();
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(1));
        let result = planner.plan(&net);
        (net, result)
    }

    #[test]
    fn two_stage_produces_a_valid_plan_from_scratch() {
        let (net, result) = quick_plan(0.0);
        assert!(result.final_cost > 0.0);
        assert!(result.final_cost <= result.first_stage_cost + 1e-9);
        assert!(validate_plan(&net, &result.final_units));
        assert!(validate_plan(&net, &result.first_stage_units));
    }

    #[test]
    fn second_stage_only_trims_from_a_warm_start() {
        let (net, result) = quick_plan(0.75);
        // With most capacity pre-provisioned, stage 2 must still deliver a
        // feasible plan within bounds.
        assert!(validate_plan(&net, &result.final_units));
        // Bounds honored: every final capacity within the pruned bound.
        for (i, &(l, _, _, ub, _)) in result.pruning.per_link.iter().enumerate() {
            assert!(
                result.final_units[i] <= ub,
                "link {l} exceeds its pruned bound"
            );
        }
    }

    #[test]
    fn training_report_and_stats_are_populated() {
        let (_, result) = quick_plan(0.5);
        assert!(result.train_report.epochs_run() > 0);
        assert!(result.eval_stats.scenario_checks > 0);
        assert!(result.pruning.reduction_log10() >= 0.0);
    }
}
