//! The two-stage NeuroPlan pipeline (Fig. 2 / Fig. 3), run under the
//! anytime supervisor: every stage has a budget, transient failures are
//! retried with seeded backoff, and hard budget exhaustion walks the
//! degradation ladder instead of failing (DESIGN.md §11).

use crate::checkpoint;
use crate::config::NeuroPlanConfig;
use crate::env::PlanningEnv;
use crate::greedy::greedy_augment;
use crate::master::{
    apply_units, lp_round_plan, plan_cost_of, polish_units_budgeted, solve_master_telemetry,
    MasterConfig, MasterOutcome,
};
use crate::report::PruningReport;
use np_chaos::checkpoint::{append_record, read_records, Record};
use np_eval::EvalStats;
use np_flow::MetricCut;
use np_lp::MipStatus;
use np_rl::{train_resumable, ActorCritic, GraphEnv, TrainProgress, TrainReport, TrainResume};
use np_supervisor::{PlanQuality, StageCtx, StageError, SupervisionReport, Supervisor};
use np_telemetry::{sys, Telemetry};
use np_topology::Network;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Outputs of the RL stage.
#[derive(Clone, Debug)]
pub struct FirstStage {
    /// Units per link of the initial plan handed to stage 2 (the best RL
    /// plan, or the greedy reference when RL never completed a
    /// trajectory).
    pub units: Vec<u32>,
    /// Cost of that plan.
    pub cost: f64,
    /// Cost of the best plan the **RL agent itself** found (`None` =
    /// "does not converge", the crosses of Fig. 10).
    pub rl_cost: Option<f64>,
    /// Cost of the greedy reference plan (also the reward normalizer).
    pub reference_cost: f64,
    /// Per-epoch training statistics.
    pub report: TrainReport,
    /// Metric-cut certificates harvested from the evaluator.
    pub certificates: Vec<MetricCut>,
    /// Evaluator instrumentation.
    pub stats: EvalStats,
}

/// A complete NeuroPlan run's outputs.
#[derive(Clone, Debug)]
pub struct NeuroPlanResult {
    /// Cost of the best feasible plan the RL stage produced
    /// (*First-stage* in the paper's figures).
    pub first_stage_cost: f64,
    /// Units per link of the first-stage plan.
    pub first_stage_units: Vec<u32>,
    /// Cost after the α-pruned ILP stage (*NeuroPlan* in the figures).
    pub final_cost: f64,
    /// Units per link of the final plan.
    pub final_units: Vec<u32>,
    /// Which rung of the degradation ladder produced the final plan.
    pub quality: PlanQuality,
    /// Per-stage retry/backoff/degrade trace from the supervisor.
    pub supervision: SupervisionReport,
    /// Per-epoch RL training statistics.
    pub train_report: TrainReport,
    /// Second-stage solver outcome.
    pub master: MasterOutcome,
    /// Evaluator instrumentation accumulated across the run.
    pub eval_stats: EvalStats,
    /// The interpretable pruning summary (§4.3).
    pub pruning: PruningReport,
}

/// Why a [`NeuroPlan::try_plan`] run could not produce a plan. With the
/// default configuration (unlimited budgets, degradation enabled) this
/// is unreachable: some rung of the ladder always returns the feasible
/// first-stage plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanFailure {
    /// A stage ran out of budget/retries and `--no-degrade` forbade
    /// falling back to a lower rung.
    StageExhausted {
        /// The stage that gave out.
        stage: String,
        /// Last failure reason seen.
        reason: String,
    },
    /// The instance admits no feasible plan at any capacity.
    Infeasible {
        /// What proved it infeasible.
        reason: String,
    },
    /// The run's [`np_chaos::CancelToken`] fired. Never retried and
    /// never degraded: a cancelled request must release its worker at
    /// the next stage boundary, not grind down the quality ladder.
    Cancelled,
}

impl std::fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanFailure::StageExhausted { stage, reason } => write!(
                f,
                "stage `{stage}` exhausted its budget and degradation is disabled: {reason}"
            ),
            PlanFailure::Infeasible { reason } => {
                write!(f, "planning instance is infeasible: {reason}")
            }
            PlanFailure::Cancelled => write!(f, "planning run was cancelled"),
        }
    }
}

impl std::error::Error for PlanFailure {}

/// Why [`validate_plan`] rejected a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The unit vector does not have one entry per link.
    WrongLength {
        /// Links in the network.
        expected: usize,
        /// Entries in the plan.
        got: usize,
    },
    /// A scenario's service expectations are violated by these
    /// capacities. Scenario 0 is the no-failure base case; scenario `k`
    /// (k ≥ 1) is failure `k − 1` of the instance's failure set.
    ScenarioInfeasible {
        /// Dense scenario index of the first violation.
        scenario: usize,
    },
    /// The violated scenario cannot be fixed by adding capacity — the
    /// instance itself is broken under that failure.
    StructurallyInfeasible {
        /// Dense scenario index of the structural violation.
        scenario: usize,
    },
}

impl PlanError {
    fn scenario_name(scenario: usize) -> String {
        if scenario == 0 {
            "scenario 0 (no-failure)".to_string()
        } else {
            format!("scenario {scenario} (failure {})", scenario - 1)
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WrongLength { expected, got } => {
                write!(f, "plan has {got} capacity entries for {expected} links")
            }
            PlanError::ScenarioInfeasible { scenario } => write!(
                f,
                "plan violates the service expectations of {}",
                Self::scenario_name(*scenario)
            ),
            PlanError::StructurallyInfeasible { scenario } => write!(
                f,
                "{} admits no feasible routing at any capacity",
                Self::scenario_name(*scenario)
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The NeuroPlan planner.
pub struct NeuroPlan {
    /// Pipeline configuration.
    pub cfg: NeuroPlanConfig,
    /// Telemetry sink threaded through both stages (noop by default).
    pub tel: Telemetry,
    /// Directory for checkpoint records (`None` = no checkpointing). The
    /// pipeline appends to `<dir>/checkpoint.jsonl` — a `meta` record,
    /// one `epoch` record per completed training epoch, a `first_stage`
    /// record and a `master` record (DESIGN.md §10).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from valid records already in `checkpoint_dir`. Resuming a
    /// run killed at any epoch reproduces the uninterrupted run's plan
    /// bit for bit; a checkpoint from a different instance or config is
    /// detected by fingerprint and ignored.
    pub resume: bool,
    /// Cooperative cancellation for the whole run, polled at supervisor
    /// stage boundaries and trainer epoch boundaries. Cancelling stops
    /// the run with [`PlanFailure::Cancelled`] on a complete,
    /// checkpointable unit of work, so a later resume is bit-exact.
    pub cancel: np_chaos::CancelToken,
}

impl NeuroPlan {
    /// New planner with the given configuration.
    pub fn new(cfg: NeuroPlanConfig) -> Self {
        NeuroPlan {
            cfg,
            tel: Telemetry::noop(),
            checkpoint_dir: None,
            resume: false,
            cancel: np_chaos::CancelToken::new(),
        }
    }

    /// New planner reporting through `tel`: stage spans under `pipeline`,
    /// plus the `rl`, `eval`, `master`, `lp` and `supervisor` subsystem
    /// counters.
    pub fn with_telemetry(cfg: NeuroPlanConfig, tel: Telemetry) -> Self {
        NeuroPlan {
            cfg,
            tel,
            checkpoint_dir: None,
            resume: false,
            cancel: np_chaos::CancelToken::new(),
        }
    }

    /// Write checkpoint records under `dir`; when `resume` is set,
    /// continue from whatever valid records are already there.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, resume: bool) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.resume = resume;
        self
    }

    /// Share a cancellation token with this run's owner (a serve daemon
    /// or a CLI signal handler).
    pub fn with_cancel(mut self, cancel: np_chaos::CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join("checkpoint.jsonl"))
    }

    /// Best-effort record append: a full disk must degrade the run to
    /// "unresumable", never kill it.
    pub(crate) fn append(&self, path: &Path, kind: &str, body: Value, chaos: &np_chaos::Chaos) {
        let t0 = np_telemetry::profiling().then(std::time::Instant::now);
        if let Err(e) = append_record(path, kind, body, chaos) {
            eprintln!("warning: failed to write checkpoint record `{kind}`: {e}");
        }
        if let Some(t0) = t0 {
            self.tel.record_span(
                sys::PIPELINE,
                "checkpoint_io",
                t0.elapsed().as_micros() as u64,
            );
        }
    }

    /// Run both stages on a planning instance.
    ///
    /// Panics if [`NeuroPlan::try_plan`] fails — which with the default
    /// supervisor configuration only happens for a structurally
    /// infeasible instance (some protected demand has no surviving path
    /// under some scenario); such an instance has no plan at any cost.
    pub fn plan(&self, net: &Network) -> NeuroPlanResult {
        self.try_plan(net)
            .unwrap_or_else(|e| panic!("neuroplan: {e}"))
    }

    /// Run both stages under the anytime supervisor.
    ///
    /// Every stage runs under [`NeuroPlanConfig::supervisor`]'s budget
    /// and retry policy. When the second stage cannot produce a plan in
    /// budget, the degradation ladder steps down — proven-optimal MILP,
    /// best MILP incumbent, LP-relaxation rounding, first-stage
    /// heuristic — and the rung reached is reported as
    /// [`NeuroPlanResult::quality`]. `Err` is only possible when the
    /// instance is infeasible or degradation is disabled.
    pub fn try_plan(&self, net: &Network) -> Result<NeuroPlanResult, PlanFailure> {
        let _plan_span = self.tel.span(sys::PIPELINE, "plan");
        let chaos = np_chaos::global();
        let sup =
            Supervisor::new(self.cfg.supervisor, self.tel.clone()).with_cancel(self.cancel.clone());
        let ckpt = self.checkpoint_path();
        let mut records: Vec<Record> = Vec::new();
        if let Some(path) = &ckpt {
            let fp = checkpoint::fingerprint(net, &self.cfg);
            if self.resume {
                records = read_records(path);
                let matches = records
                    .first()
                    .is_some_and(|r| r.kind == "meta" && checkpoint::meta_matches(&r.body, &fp));
                if !matches && !records.is_empty() {
                    eprintln!(
                        "warning: checkpoint in {} does not match this instance/config; \
                         starting fresh",
                        path.display()
                    );
                    records.clear();
                }
            }
            if records.is_empty() {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::remove_file(path);
                self.append(path, "meta", checkpoint::meta_body(&fp), chaos);
            }
        }
        let epoch_recs: Vec<checkpoint::EpochRecord> = records
            .iter()
            .filter(|r| r.kind == "epoch")
            .filter_map(|r| checkpoint::decode_epoch(&r.body))
            .collect();
        let epoch_stats = TrainReport {
            epochs: epoch_recs.iter().map(|e| e.stats.clone()).collect(),
        };
        let first_rec = records
            .iter()
            .find(|r| r.kind == "first_stage")
            .and_then(|r| checkpoint::decode_first_stage(&r.body, epoch_stats));
        let master_rec = records
            .iter()
            .find(|r| r.kind == "master")
            .and_then(|r| checkpoint::decode_master(&r.body));

        // A run that already finished resumes straight to its recorded
        // result, including the ladder rung the original run settled on.
        // The pruning report is a pure function of the first-stage plan,
        // so it is recomputed rather than stored.
        if let (Some(first), Some((master, quality))) = (&first_rec, master_rec) {
            let pruning = self.pruning_report(net, &first.units);
            return Ok(Self::finish(
                first.cost,
                first.units.clone(),
                first.report.clone(),
                master,
                quality,
                sup.report(),
                EvalStats::default(),
                pruning,
            ));
        }

        let first = match first_rec {
            Some(first) => first,
            None => {
                let first = sup
                    .run("first_stage", |ctx| {
                        // A retry after a mid-training panic must resume
                        // from the records the failed attempt managed to
                        // append, not from the stale pre-attempt view.
                        let recs = match (&ckpt, ctx.attempt) {
                            (Some(path), a) if a > 0 => read_records(path)
                                .iter()
                                .filter(|r| r.kind == "epoch")
                                .filter_map(|r| checkpoint::decode_epoch(&r.body))
                                .collect(),
                            _ => epoch_recs.clone(),
                        };
                        self.first_stage_resumable(net, ckpt.as_deref(), recs, chaos, Some(ctx))
                    })
                    .map_err(|e| match e {
                        StageError::Fatal(reason) => PlanFailure::Infeasible { reason },
                        StageError::Cancelled => PlanFailure::Cancelled,
                        StageError::Transient(reason) => PlanFailure::StageExhausted {
                            stage: "first_stage".to_string(),
                            reason,
                        },
                    })?;
                if let Some(path) = &ckpt {
                    self.append(
                        path,
                        "first_stage",
                        checkpoint::first_stage_body(&first),
                        chaos,
                    );
                }
                first
            }
        };
        let FirstStage {
            units: first_units,
            cost: first_cost,
            report: train_report,
            certificates: seed_cuts,
            stats: mut eval_stats,
            ..
        } = first;
        let (master, pruning, quality) = self.second_stage_supervised(
            &sup,
            net,
            &first_units,
            first_cost,
            seed_cuts,
            &mut eval_stats,
        )?;
        if let Some(path) = &ckpt {
            self.append(
                path,
                "master",
                checkpoint::master_body(&master, quality),
                chaos,
            );
        }
        Ok(Self::finish(
            first_cost,
            first_units,
            train_report,
            master,
            quality,
            sup.report(),
            eval_stats,
            pruning,
        ))
    }

    /// Final plan selection: the master incumbent when it beats the
    /// first stage, otherwise the first-stage plan itself.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        first_cost: f64,
        first_units: Vec<u32>,
        train_report: TrainReport,
        master: MasterOutcome,
        quality: PlanQuality,
        supervision: SupervisionReport,
        eval_stats: EvalStats,
        pruning: PruningReport,
    ) -> NeuroPlanResult {
        let (final_cost, final_units) = if master.has_plan() && master.cost < first_cost {
            (master.cost, master.units.clone())
        } else {
            (first_cost, first_units.clone())
        };
        NeuroPlanResult {
            first_stage_cost: first_cost,
            first_stage_units: first_units,
            final_cost,
            final_units,
            quality,
            supervision,
            train_report,
            master,
            eval_stats,
            pruning,
        }
    }

    fn pruning_report(&self, net: &Network, first_units: &[u32]) -> PruningReport {
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor)
    }

    /// Stage 1: train the agent and extract the best feasible plan. A
    /// greedy certificate-guided plan provides the reward normalizer and
    /// the fallback if training never completes a trajectory.
    ///
    /// Panics on a structurally infeasible instance (same contract as
    /// [`NeuroPlan::plan`]); runs unsupervised with no budget.
    pub fn first_stage(&self, net: &Network) -> FirstStage {
        match self.first_stage_resumable(net, None, Vec::new(), np_chaos::global(), None) {
            Ok(first) => first,
            Err(e) => panic!("planning instance must admit a feasible plan: {e}"),
        }
    }

    /// [`NeuroPlan::first_stage`], with checkpointing and supervision:
    /// epoch records are appended to `ckpt` as training progresses,
    /// `epoch_recs` (the decoded records of an interrupted run) restore
    /// the trainer to the exact post-epoch state the last record
    /// captured, and `ctx` (when supervised) caps the epoch count and
    /// wall clock of the training loop.
    fn first_stage_resumable(
        &self,
        net: &Network,
        ckpt: Option<&Path>,
        epoch_recs: Vec<checkpoint::EpochRecord>,
        chaos: &np_chaos::Chaos,
        ctx: Option<&StageCtx>,
    ) -> Result<FirstStage, StageError> {
        let _stage_span = self.tel.span(sys::PIPELINE, "first_stage");
        // Reference plan: reward scale + fallback. Failure here means no
        // plan exists at any capacity — not worth retrying.
        let mut ref_net = net.clone();
        let ref_cost = greedy_augment(&mut ref_net, self.cfg.eval)
            .map_err(|e| StageError::Fatal(format!("greedy reference failed: {e:?}")))?;
        let ref_units: Vec<u32> = ref_net
            .link_ids()
            .map(|l| ref_net.link(l).capacity_units)
            .collect();
        let norm = ref_cost.max(1e-6);

        let mut env = PlanningEnv::new(
            net.clone(),
            self.cfg.eval,
            self.cfg.max_units_per_step,
            norm,
        );
        env.evaluator_mut().set_telemetry(self.tel.clone());
        let mut agent = ActorCritic::new(
            env.adjacency().clone(),
            env.feature_dim(),
            self.cfg.max_units_per_step,
            &self.cfg.agent,
        );
        // Restore from the last epoch record, if any. A blob that fails
        // to restore (foreign, corrupt) discards the resume entirely
        // rather than training from a half-restored state.
        let mut resume: Option<TrainResume> = None;
        if let Some(last) = epoch_recs.last() {
            if agent.import_state(&last.agent) && env.restore_state_json(&last.env) {
                // Reconstruct the early-stop decision: if the streak had
                // already reached the patience threshold, the original
                // run stopped after this epoch — the resumed run must
                // not train further.
                let stopped = self.cfg.train.convergence_tol > 0.0
                    && last.converged_run >= self.cfg.train.patience;
                resume = Some(TrainResume {
                    next_epoch: if stopped {
                        self.cfg.train.epochs
                    } else {
                        last.next_epoch
                    },
                    converged_run: last.converged_run,
                    prev_return: last.prev_return,
                    recovery_nonce: last.recovery_nonce,
                    stats: epoch_recs.iter().map(|e| e.stats.clone()).collect(),
                });
            } else {
                eprintln!(
                    "warning: checkpointed trainer state failed to restore; restarting training"
                );
            }
        }
        // The supervised stage budget clamps the training loop: epoch
        // cap directly, wall cap via the trainer's own epoch-boundary
        // check so the stop always lands on a checkpointable epoch.
        let mut tcfg = self.cfg.train.clone();
        tcfg.stop = Some(self.cancel.clone());
        if let Some(ctx) = ctx {
            if let Some(cap) = ctx.budget.max_epochs {
                tcfg.epochs = tcfg.epochs.min(cap);
            }
            let remaining = ctx.remaining_secs();
            if remaining.is_finite() {
                tcfg.wall_limit_secs = tcfg.wall_limit_secs.min(remaining);
            }
        }
        let report = match ckpt {
            Some(path) => {
                let mut hook =
                    |agent: &mut ActorCritic, env: &mut dyn GraphEnv, p: &TrainProgress<'_>| {
                        let agent_blob = agent.export_state();
                        let env_blob = env.state_json().unwrap_or_default();
                        self.append(
                            path,
                            "epoch",
                            checkpoint::epoch_body(p, &agent_blob, &env_blob),
                            chaos,
                        );
                    };
                train_resumable(
                    &mut env,
                    &mut agent,
                    &tcfg,
                    &self.tel,
                    chaos,
                    resume,
                    Some(&mut hook),
                )
            }
            None => train_resumable(&mut env, &mut agent, &tcfg, &self.tel, chaos, resume, None),
        };
        // A cancelled run stops here, on the epoch boundary the trainer
        // just checkpointed — never spend the final rollouts or the
        // master on a request nobody is waiting for.
        if self.cancel.is_cancelled() {
            return Err(StageError::Cancelled);
        }

        // Final rollouts: stochastic samples plus one greedy decode. With
        // the wall budget spent, the stochastic extras are dropped but
        // the greedy decode always runs — it is what turns a trained
        // policy into a plan.
        agent.reseed_sampling(self.cfg.seed ^ 0xdead_beef);
        let rollout_cap = self.cfg.train.max_traj_len * 4;
        let wall_spent = |ctx: Option<&StageCtx>| {
            ctx.is_some_and(|c| c.budget.wall_secs.is_finite() && c.remaining_secs() <= 0.0)
        };
        for k in 0..=self.cfg.final_rollouts {
            let greedy_decode = k == self.cfg.final_rollouts;
            if !greedy_decode && wall_spent(ctx) {
                continue;
            }
            let mut obs = env.reset();
            for _ in 0..rollout_cap {
                if !obs.has_valid_action() {
                    break;
                }
                let action = if greedy_decode {
                    agent.act_greedy(&obs.features, &obs.action_mask)
                } else {
                    agent.act(&obs.features, &obs.action_mask).0
                };
                let (o, _, done) = env.step(action);
                obs = o;
                if done {
                    break;
                }
            }
        }

        let rl_best = env.best_plan().cloned();
        let rl_cost = rl_best.as_ref().map(|(c, _)| *c);
        let (cost, units) = match rl_best {
            Some((cost, snap)) if cost <= ref_cost => (cost, snap.as_slice().to_vec()),
            _ => (ref_cost, ref_units),
        };
        // Harvest every certificate the evaluator collected: free,
        // already-validated rows for the master.
        let evaluator = env.evaluator_mut();
        let certs: Vec<MetricCut> = (0..evaluator.num_scenarios())
            .filter_map(|i| evaluator.certificate(i).cloned())
            .collect();
        let stats = evaluator.take_stats();
        Ok(FirstStage {
            units,
            cost,
            rl_cost,
            reference_cost: ref_cost,
            report,
            certificates: certs,
            stats,
        })
    }

    /// Stage 2: α-pruned ILP around the first-stage plan — the
    /// unsupervised entry point (no budgets, no ladder, post-solve
    /// polish inside the master as in the original pipeline).
    pub fn second_stage(
        &self,
        net: &Network,
        first_units: &[u32],
        first_cost: f64,
        seed_cuts: Vec<MetricCut>,
        eval_stats: &mut EvalStats,
    ) -> (MasterOutcome, PruningReport) {
        let _stage_span = self.tel.span(sys::PIPELINE, "second_stage");
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        let pruning =
            PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor);
        let mut evaluator =
            np_eval::PlanEvaluator::with_telemetry(net, self.cfg.eval, self.tel.clone());
        let cfg = MasterConfig {
            upper_bounds: bounds,
            // The first-stage plan is feasible inside the pruned bounds, so
            // its cost (plus slack for ties) is a valid cutoff.
            cutoff: Some(first_cost * (1.0 + 1e-9) + 1e-9),
            node_limit: self.cfg.mip_node_limit,
            time_limit_secs: self.cfg.mip_time_limit_secs,
            max_cuts_per_round: 8,
            seed_cuts,
            granularity: 1,
            gap_tol: MasterConfig::DEFAULT_GAP,
            // Stage 2 starts from the first-stage plan: polish it, use it
            // as the incumbent, never return anything worse.
            warm_units: Some(first_units.to_vec()),
            polish_final: true,
            lp_backend: self.cfg.lp_backend,
        };
        let outcome = solve_master_telemetry(net, &mut evaluator, &cfg, &self.tel);
        eval_stats.merge(&evaluator.take_stats());
        (outcome, pruning)
    }

    /// Stage 2 under the supervisor: the α-relaxed MILP with incumbent
    /// return, then — on hard budget exhaustion — the degradation
    /// ladder: LP-relaxation rounding, then the first-stage heuristic
    /// plan. A final budget-aware 1-opt polish runs as its own stage.
    fn second_stage_supervised(
        &self,
        sup: &Supervisor,
        net: &Network,
        first_units: &[u32],
        first_cost: f64,
        seed_cuts: Vec<MetricCut>,
        eval_stats: &mut EvalStats,
    ) -> Result<(MasterOutcome, PruningReport, PlanQuality), PlanFailure> {
        let _stage_span = self.tel.span(sys::PIPELINE, "second_stage");
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        let pruning =
            PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor);
        let mut evaluator =
            np_eval::PlanEvaluator::with_telemetry(net, self.cfg.eval, self.tel.clone());
        let budget = self.cfg.supervisor.budget;

        // Rungs 0/1: the α-relaxed MILP. `TimeLimit` with an incumbent is
        // a *success* here — anytime semantics — so only a solve that
        // comes back empty-handed is a transient worth retrying (with a
        // widened node budget, since `Limit` is the usual cause).
        let master_try = sup.run("master", |ctx| {
            if ctx.exhausted() {
                return Err(StageError::Transient(
                    "stage budget exhausted before the master solve".to_string(),
                ));
            }
            let node_limit = {
                let scaled = self
                    .cfg
                    .mip_node_limit
                    .saturating_mul(ctx.attempt as usize + 1);
                match budget.max_nodes {
                    Some(cap) => scaled.min(cap),
                    None => scaled,
                }
            };
            let cfg = MasterConfig {
                upper_bounds: bounds.clone(),
                cutoff: Some(first_cost * (1.0 + 1e-9) + 1e-9),
                node_limit,
                time_limit_secs: self.cfg.mip_time_limit_secs.min(ctx.remaining_secs()),
                max_cuts_per_round: 8,
                seed_cuts: seed_cuts.clone(),
                granularity: 1,
                gap_tol: MasterConfig::DEFAULT_GAP,
                warm_units: Some(first_units.to_vec()),
                // The supervised pipeline polishes in its own budgeted
                // stage below.
                polish_final: false,
                lp_backend: self.cfg.lp_backend,
            };
            let outcome = solve_master_telemetry(net, &mut evaluator, &cfg, &self.tel);
            if outcome.has_plan() {
                let quality = if outcome.status == MipStatus::Optimal {
                    PlanQuality::Optimal
                } else {
                    PlanQuality::Incumbent
                };
                Ok((outcome, quality))
            } else if outcome.status == MipStatus::Infeasible {
                Err(StageError::Fatal(
                    "master proved the pruned instance infeasible".to_string(),
                ))
            } else {
                Err(StageError::Transient(format!(
                    "master returned no incumbent (status {:?})",
                    outcome.status
                )))
            }
        });

        let (outcome, quality) = match master_try {
            Ok(v) => v,
            // Cancellation never walks the ladder: the point is to free
            // the worker now, not to hand back a degraded plan.
            Err(StageError::Cancelled) => return Err(PlanFailure::Cancelled),
            Err(StageError::Fatal(reason)) => {
                // A feasible first-stage plan exists, so "infeasible"
                // here is a solver artifact; the ladder still applies.
                self.degraded_outcome(sup, net, &mut evaluator, &bounds, first_units, first_cost)
                    .ok_or(PlanFailure::Infeasible { reason })?
            }
            Err(StageError::Transient(reason)) => self
                .degraded_outcome(sup, net, &mut evaluator, &bounds, first_units, first_cost)
                .ok_or(PlanFailure::StageExhausted {
                    stage: "master".to_string(),
                    reason,
                })?,
        };

        // Final stage: budget-aware 1-opt polish of whatever rung won.
        // Skipping on an exhausted budget is not a failure — the plan is
        // already feasible, polish only trims cost.
        let polished = sup.run("polish", |ctx| {
            let mut m = outcome.clone();
            if m.has_plan() && !ctx.exhausted() {
                let over = polish_units_budgeted(
                    net,
                    &mut evaluator,
                    &mut m.units,
                    &Instant::now(),
                    ctx.remaining_secs(),
                );
                if over > 0 {
                    m.deadline_overshoot_us += over;
                    self.tel.incr(sys::MASTER, "deadline_overshoot_us", over);
                }
                m.cost = plan_cost_of(net, &m.units);
            }
            Ok::<_, StageError>(m)
        });
        let outcome = match polished {
            Ok(m) => m,
            Err(_) => outcome,
        };
        eval_stats.merge(&evaluator.take_stats());
        Ok((outcome, pruning, quality))
    }

    /// Walk the ladder below the incumbent rung: LP-relaxation rounding
    /// (`Rounded`), then the first-stage plan itself (`Heuristic`).
    /// `None` when degradation is disabled — the caller turns that into
    /// the hard error the `--no-degrade` contract demands.
    fn degraded_outcome(
        &self,
        sup: &Supervisor,
        net: &Network,
        evaluator: &mut np_eval::PlanEvaluator,
        bounds: &[u32],
        first_units: &[u32],
        first_cost: f64,
    ) -> Option<(MasterOutcome, PlanQuality)> {
        if !sup.may_degrade() {
            return None;
        }
        // Rung 2: solve the LP relaxation, round up, repair with
        // separation rounds until the rounded plan verifies.
        sup.note_degrade("master", PlanQuality::Rounded);
        let rounded = sup.run("lp_round", |ctx| {
            if ctx.exhausted() {
                return Err(StageError::Transient(
                    "stage budget exhausted before LP rounding".to_string(),
                ));
            }
            let cfg = MasterConfig {
                upper_bounds: bounds.to_vec(),
                cutoff: None,
                node_limit: self.cfg.mip_node_limit,
                time_limit_secs: self.cfg.mip_time_limit_secs,
                max_cuts_per_round: 8,
                seed_cuts: Vec::new(),
                granularity: 1,
                gap_tol: MasterConfig::DEFAULT_GAP,
                warm_units: None,
                polish_final: false,
                lp_backend: self.cfg.lp_backend,
            };
            let mut deadline = || ctx.remaining_secs() <= 0.0;
            match lp_round_plan(net, evaluator, &cfg, &mut deadline, &self.tel) {
                Some((units, cost)) => Ok(MasterOutcome {
                    status: MipStatus::TimeLimit,
                    cost,
                    units,
                    nodes: 0,
                    cuts_added: 0,
                    best_bound: f64::NEG_INFINITY,
                    deadline_overshoot_us: 0,
                }),
                None => Err(StageError::Transient(
                    "LP rounding found no verifiable plan".to_string(),
                )),
            }
        });
        if let Ok(outcome) = rounded {
            return Some((outcome, PlanQuality::Rounded));
        }
        // Rung 3: the first-stage plan is feasible by construction;
        // return it as-is. This rung cannot fail.
        sup.note_degrade("lp_round", PlanQuality::Heuristic);
        sup.note_skip("heuristic");
        Some((
            MasterOutcome {
                status: MipStatus::TimeLimit,
                cost: first_cost,
                units: first_units.to_vec(),
                nodes: 0,
                cuts_added: 0,
                best_bound: f64::NEG_INFINITY,
                deadline_overshoot_us: 0,
            },
            PlanQuality::Heuristic,
        ))
    }
}

/// Validate a finished plan end-to-end with a fresh exact evaluator —
/// harnesses call this before trusting any reported cost. On failure the
/// error names the violated constraint (the first infeasible scenario).
pub fn validate_plan(net: &Network, units: &[u32]) -> Result<(), PlanError> {
    let expected = net.link_ids().count();
    if units.len() != expected {
        return Err(PlanError::WrongLength {
            expected,
            got: units.len(),
        });
    }
    let mut check = net.clone();
    apply_units(&mut check, units);
    let mut evaluator = np_eval::PlanEvaluator::new(&check, self_exact());
    let outcome = evaluator.check_network(&check);
    if outcome.feasible {
        return Ok(());
    }
    let scenario = outcome.first_violated.unwrap_or(0);
    Err(if outcome.structural {
        PlanError::StructurallyInfeasible { scenario }
    } else {
        PlanError::ScenarioInfeasible { scenario }
    })
}

fn self_exact() -> np_eval::EvalConfig {
    np_eval::EvalConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeuroPlanConfig;
    use np_topology::generator::GeneratorConfig;

    fn quick_plan(fill: f64) -> (Network, NeuroPlanResult) {
        let net = GeneratorConfig::a_variant(fill).generate();
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(1));
        let result = planner.plan(&net);
        (net, result)
    }

    #[test]
    fn two_stage_produces_a_valid_plan_from_scratch() {
        let (net, result) = quick_plan(0.0);
        assert!(result.final_cost > 0.0);
        assert!(result.final_cost <= result.first_stage_cost + 1e-9);
        validate_plan(&net, &result.final_units).expect("final plan validates");
        validate_plan(&net, &result.first_stage_units).expect("first-stage plan validates");
        // An unlimited budget never degrades below the incumbent rung.
        assert!(result.quality <= PlanQuality::Incumbent);
        assert_eq!(result.supervision.degrades, 0);
        assert!(result.supervision.stage("master").is_some());
    }

    #[test]
    fn second_stage_only_trims_from_a_warm_start() {
        let (net, result) = quick_plan(0.75);
        // With most capacity pre-provisioned, stage 2 must still deliver a
        // feasible plan within bounds.
        validate_plan(&net, &result.final_units).expect("final plan validates");
        // Bounds honored: every final capacity within the pruned bound.
        for (i, &(l, _, _, ub, _)) in result.pruning.per_link.iter().enumerate() {
            assert!(
                result.final_units[i] <= ub,
                "link {l} exceeds its pruned bound"
            );
        }
    }

    #[test]
    fn training_report_and_stats_are_populated() {
        let (_, result) = quick_plan(0.5);
        assert!(result.train_report.epochs_run() > 0);
        assert!(result.eval_stats.scenario_checks > 0);
        assert!(result.pruning.reduction_log10() >= 0.0);
    }

    #[test]
    fn validate_plan_names_the_violated_constraint() {
        let net = GeneratorConfig::a_variant(0.0).generate();
        let links = net.link_ids().count();
        let short = validate_plan(&net, &vec![0u32; links - 1]);
        assert_eq!(
            short,
            Err(PlanError::WrongLength {
                expected: links,
                got: links - 1
            })
        );
        // A dark network fails at the first scenario and says so.
        let dark = validate_plan(&net, &vec![0u32; links]);
        match dark {
            Err(PlanError::ScenarioInfeasible { scenario }) => {
                let msg = PlanError::ScenarioInfeasible { scenario }.to_string();
                assert!(
                    msg.contains("scenario"),
                    "message names the scenario: {msg}"
                );
            }
            other => panic!("expected a scenario violation, got {other:?}"),
        }
    }

    #[test]
    fn epoch_budget_degrades_gracefully_not_fatally() {
        // One training epoch and a starved node budget: the run must
        // still produce a validated plan, possibly on a lower rung.
        let net = GeneratorConfig::a_variant(0.5).generate();
        let mut cfg = NeuroPlanConfig::quick().with_seed(3);
        cfg.supervisor.budget.max_epochs = Some(1);
        cfg.mip_node_limit = 1;
        let result = NeuroPlan::new(cfg).plan(&net);
        validate_plan(&net, &result.final_units).expect("degraded plan still validates");
        assert!(result.train_report.epochs_run() <= 1);
    }

    #[test]
    fn no_degrade_reports_a_stage_exhausted_error() {
        // A zero wall budget starves the first stage before the greedy
        // reference; with degradation off this must surface as an error,
        // not a panic or a silent bad plan.
        let net = GeneratorConfig::a_variant(0.5).generate();
        let mut cfg = NeuroPlanConfig::quick().with_seed(3);
        cfg = cfg.with_stage_budget(0.0).with_degrade(false);
        cfg.supervisor.retry.max_retries = 0;
        match NeuroPlan::new(cfg).try_plan(&net) {
            Err(PlanFailure::StageExhausted { stage, .. }) => {
                assert_eq!(stage, "master");
            }
            other => panic!("expected StageExhausted, got {other:?}"),
        }
    }
}
