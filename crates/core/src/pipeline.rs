//! The two-stage NeuroPlan pipeline (Fig. 2 / Fig. 3).

use crate::config::NeuroPlanConfig;
use crate::env::PlanningEnv;
use crate::greedy::greedy_augment;
use crate::master::{apply_units, solve_master_telemetry, MasterConfig, MasterOutcome};
use crate::report::PruningReport;
use np_eval::EvalStats;
use np_flow::MetricCut;
use np_rl::{train_telemetry, ActorCritic, GraphEnv, TrainReport};
use np_telemetry::{sys, Telemetry};
use np_topology::Network;

/// Outputs of the RL stage.
#[derive(Clone, Debug)]
pub struct FirstStage {
    /// Units per link of the initial plan handed to stage 2 (the best RL
    /// plan, or the greedy reference when RL never completed a
    /// trajectory).
    pub units: Vec<u32>,
    /// Cost of that plan.
    pub cost: f64,
    /// Cost of the best plan the **RL agent itself** found (`None` =
    /// "does not converge", the crosses of Fig. 10).
    pub rl_cost: Option<f64>,
    /// Cost of the greedy reference plan (also the reward normalizer).
    pub reference_cost: f64,
    /// Per-epoch training statistics.
    pub report: TrainReport,
    /// Metric-cut certificates harvested from the evaluator.
    pub certificates: Vec<MetricCut>,
    /// Evaluator instrumentation.
    pub stats: EvalStats,
}

/// A complete NeuroPlan run's outputs.
#[derive(Clone, Debug)]
pub struct NeuroPlanResult {
    /// Cost of the best feasible plan the RL stage produced
    /// (*First-stage* in the paper's figures).
    pub first_stage_cost: f64,
    /// Units per link of the first-stage plan.
    pub first_stage_units: Vec<u32>,
    /// Cost after the α-pruned ILP stage (*NeuroPlan* in the figures).
    pub final_cost: f64,
    /// Units per link of the final plan.
    pub final_units: Vec<u32>,
    /// Per-epoch RL training statistics.
    pub train_report: TrainReport,
    /// Second-stage solver outcome.
    pub master: MasterOutcome,
    /// Evaluator instrumentation accumulated across the run.
    pub eval_stats: EvalStats,
    /// The interpretable pruning summary (§4.3).
    pub pruning: PruningReport,
}

/// The NeuroPlan planner.
pub struct NeuroPlan {
    /// Pipeline configuration.
    pub cfg: NeuroPlanConfig,
    /// Telemetry sink threaded through both stages (noop by default).
    pub tel: Telemetry,
}

impl NeuroPlan {
    /// New planner with the given configuration.
    pub fn new(cfg: NeuroPlanConfig) -> Self {
        NeuroPlan {
            cfg,
            tel: Telemetry::noop(),
        }
    }

    /// New planner reporting through `tel`: stage spans under `pipeline`,
    /// plus the `rl`, `eval`, `master` and `lp` subsystem counters.
    pub fn with_telemetry(cfg: NeuroPlanConfig, tel: Telemetry) -> Self {
        NeuroPlan { cfg, tel }
    }

    /// Run both stages on a planning instance.
    ///
    /// Panics if the instance is structurally infeasible (some protected
    /// demand has no surviving path under some scenario) — the generator
    /// never produces such instances, and a user instance with that
    /// property has no plan at any cost.
    pub fn plan(&self, net: &Network) -> NeuroPlanResult {
        let _plan_span = self.tel.span(sys::PIPELINE, "plan");
        let first = self.first_stage(net);
        let FirstStage {
            units: first_units,
            cost: first_cost,
            report: train_report,
            certificates: seed_cuts,
            stats: mut eval_stats,
            ..
        } = first;
        let (master, pruning) =
            self.second_stage(net, &first_units, first_cost, seed_cuts, &mut eval_stats);
        // Final plan: the master incumbent when it beats the first stage,
        // otherwise the first-stage plan itself.
        let (final_cost, final_units) = if master.has_plan() && master.cost < first_cost {
            (master.cost, master.units.clone())
        } else {
            (first_cost, first_units.clone())
        };
        NeuroPlanResult {
            first_stage_cost: first_cost,
            first_stage_units: first_units,
            final_cost,
            final_units,
            train_report,
            master,
            eval_stats,
            pruning,
        }
    }

    /// Stage 1: train the agent and extract the best feasible plan. A
    /// greedy certificate-guided plan provides the reward normalizer and
    /// the fallback if training never completes a trajectory.
    pub fn first_stage(&self, net: &Network) -> FirstStage {
        let _stage_span = self.tel.span(sys::PIPELINE, "first_stage");
        // Reference plan: reward scale + fallback.
        let mut ref_net = net.clone();
        let ref_cost = greedy_augment(&mut ref_net, self.cfg.eval)
            .expect("planning instance must admit a feasible plan");
        let ref_units: Vec<u32> = ref_net
            .link_ids()
            .map(|l| ref_net.link(l).capacity_units)
            .collect();
        let norm = ref_cost.max(1e-6);

        let mut env = PlanningEnv::new(
            net.clone(),
            self.cfg.eval,
            self.cfg.max_units_per_step,
            norm,
        );
        env.evaluator_mut().set_telemetry(self.tel.clone());
        let mut agent = ActorCritic::new(
            env.adjacency().clone(),
            env.feature_dim(),
            self.cfg.max_units_per_step,
            &self.cfg.agent,
        );
        let report = train_telemetry(&mut env, &mut agent, &self.cfg.train, &self.tel);

        // Final rollouts: stochastic samples plus one greedy decode.
        agent.reseed_sampling(self.cfg.seed ^ 0xdead_beef);
        let rollout_cap = self.cfg.train.max_traj_len * 4;
        for k in 0..=self.cfg.final_rollouts {
            let greedy_decode = k == self.cfg.final_rollouts;
            let mut obs = env.reset();
            for _ in 0..rollout_cap {
                if !obs.has_valid_action() {
                    break;
                }
                let action = if greedy_decode {
                    agent.act_greedy(&obs.features, &obs.action_mask)
                } else {
                    agent.act(&obs.features, &obs.action_mask).0
                };
                let (o, _, done) = env.step(action);
                obs = o;
                if done {
                    break;
                }
            }
        }

        let rl_best = env.best_plan().cloned();
        let rl_cost = rl_best.as_ref().map(|(c, _)| *c);
        let (cost, units) = match rl_best {
            Some((cost, snap)) if cost <= ref_cost => (cost, snap.as_slice().to_vec()),
            _ => (ref_cost, ref_units),
        };
        // Harvest every certificate the evaluator collected: free,
        // already-validated rows for the master.
        let evaluator = env.evaluator_mut();
        let certs: Vec<MetricCut> = (0..evaluator.num_scenarios())
            .filter_map(|i| evaluator.certificate(i).cloned())
            .collect();
        let stats = evaluator.take_stats();
        FirstStage {
            units,
            cost,
            rl_cost,
            reference_cost: ref_cost,
            report,
            certificates: certs,
            stats,
        }
    }

    /// Stage 2: α-pruned ILP around the first-stage plan.
    pub fn second_stage(
        &self,
        net: &Network,
        first_units: &[u32],
        first_cost: f64,
        seed_cuts: Vec<MetricCut>,
        eval_stats: &mut EvalStats,
    ) -> (MasterOutcome, PruningReport) {
        let _stage_span = self.tel.span(sys::PIPELINE, "second_stage");
        let spectrum = MasterConfig::spectrum_bounds(net);
        let bounds = MasterConfig::pruned_bounds(net, first_units, self.cfg.relax_factor);
        let pruning =
            PruningReport::new(net, first_units, &bounds, &spectrum, self.cfg.relax_factor);
        let mut evaluator =
            np_eval::PlanEvaluator::with_telemetry(net, self.cfg.eval, self.tel.clone());
        let cfg = MasterConfig {
            upper_bounds: bounds,
            // The first-stage plan is feasible inside the pruned bounds, so
            // its cost (plus slack for ties) is a valid cutoff.
            cutoff: Some(first_cost * (1.0 + 1e-9) + 1e-9),
            node_limit: self.cfg.mip_node_limit,
            time_limit_secs: self.cfg.mip_time_limit_secs,
            max_cuts_per_round: 8,
            seed_cuts,
            granularity: 1,
            gap_tol: MasterConfig::DEFAULT_GAP,
            // Stage 2 starts from the first-stage plan: polish it, use it
            // as the incumbent, never return anything worse.
            warm_units: Some(first_units.to_vec()),
        };
        let outcome = solve_master_telemetry(net, &mut evaluator, &cfg, &self.tel);
        eval_stats.merge(&evaluator.take_stats());
        (outcome, pruning)
    }
}

/// Validate a finished plan end-to-end with a fresh exact evaluator —
/// harnesses call this before trusting any reported cost.
pub fn validate_plan(net: &Network, units: &[u32]) -> bool {
    let mut check = net.clone();
    apply_units(&mut check, units);
    let mut evaluator = np_eval::PlanEvaluator::new(&check, self_exact());
    evaluator.check_network(&check).feasible
}

fn self_exact() -> np_eval::EvalConfig {
    np_eval::EvalConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeuroPlanConfig;
    use np_topology::generator::GeneratorConfig;

    fn quick_plan(fill: f64) -> (Network, NeuroPlanResult) {
        let net = GeneratorConfig::a_variant(fill).generate();
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(1));
        let result = planner.plan(&net);
        (net, result)
    }

    #[test]
    fn two_stage_produces_a_valid_plan_from_scratch() {
        let (net, result) = quick_plan(0.0);
        assert!(result.final_cost > 0.0);
        assert!(result.final_cost <= result.first_stage_cost + 1e-9);
        assert!(validate_plan(&net, &result.final_units));
        assert!(validate_plan(&net, &result.first_stage_units));
    }

    #[test]
    fn second_stage_only_trims_from_a_warm_start() {
        let (net, result) = quick_plan(0.75);
        // With most capacity pre-provisioned, stage 2 must still deliver a
        // feasible plan within bounds.
        assert!(validate_plan(&net, &result.final_units));
        // Bounds honored: every final capacity within the pruned bound.
        for (i, &(l, _, _, ub, _)) in result.pruning.per_link.iter().enumerate() {
            assert!(
                result.final_units[i] <= ub,
                "link {l} exceeds its pruned bound"
            );
        }
    }

    #[test]
    fn training_report_and_stats_are_populated() {
        let (_, result) = quick_plan(0.5);
        assert!(result.train_report.epochs_run() > 0);
        assert!(result.eval_stats.scenario_checks > 0);
        assert!(result.pruning.reduction_log10() >= 0.0);
    }
}
