//! Online re-planning under churn (DESIGN.md §14): apply a stream of
//! [`ChurnEvent`]s to a planned instance and re-plan after every event
//! *incrementally*. The trained policy is never retrained — the master
//! restarts from the carried plan and is seeded with every Benders cut
//! whose validity survived the perturbation. Cut invalidation is exact:
//! the evaluator's per-scenario certificate store is updated surgically
//! by [`np_eval::PlanEvaluator::apply_perturbation`] (demand scaling
//! rescales certificates in place, a link addition drops exactly the
//! scenarios where the new link is alive, a link removal keeps every
//! certificate with remapped coefficients), so re-separation work is
//! spent only on rows a change actually invalidated.
//!
//! Fault tolerance mirrors the main pipeline: every solve runs under the
//! supervisor ladder (master → LP rounding → carried plan), an event
//! whose perturbation would make the instance structurally infeasible is
//! skipped with the previous plan kept, and — with a checkpoint
//! directory — each event appends a `replan_event` record to
//! `<dir>/replan.jsonl` carrying the *ancestor fingerprint chain*: the
//! fingerprint of the instance before and after the event plus the
//! evaluator's certificate snapshot. A killed stream resumes by locating
//! the current instance in that chain and replaying only perturbations
//! (no solves, no cut re-derivation) up to the first unrecorded event.

use crate::checkpoint::{self, MetaMatch, ReplanEventRecord};
use crate::master::{lp_round_plan, plan_cost_of, solve_master_telemetry, MasterConfig};
use crate::pipeline::{NeuroPlan, PlanFailure};
use np_chaos::checkpoint::read_records;
use np_chaos::FaultClass;
use np_churn::ChurnEvent;
use np_eval::{EvalStats, PlanEvaluator};
use np_flow::MetricCut;
use np_lp::MipStatus;
use np_supervisor::{PlanQuality, StageError, SupervisionReport, Supervisor};
use np_telemetry::sys;
use np_topology::{LinkId, Network, PerturbDelta, Perturbation};

/// Knobs of the incremental re-planning loop.
#[derive(Clone, Debug)]
pub struct ReplanConfig {
    /// Relative optimality gap for each per-event master solve. `0.0`
    /// makes every incremental solve prove optimality — the setting the
    /// equivalence suite uses to compare against a cold master.
    pub gap_tol: f64,
    /// `Some(α)`: prune each event's master around the carried plan with
    /// relax factor α (faster, inexact — the optimum may sit outside the
    /// pruned box). `None` (default): full spectrum bounds, the same
    /// search space as a cold master, so incremental equals cold exactly
    /// and is merely warmer.
    pub prune_alpha: Option<f64>,
    /// Seed for the chaos link-flap victim choice (deterministic per
    /// event index, so a resumed stream replays the same flap).
    pub flap_seed: u64,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            gap_tol: MasterConfig::DEFAULT_GAP,
            prune_alpha: None,
            flap_seed: 0,
        }
    }
}

/// What happened at one event of the stream.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// 0-based position in the stream.
    pub index: usize,
    /// Event class (`demand-scale`, `link-add`, ...).
    pub class: String,
    /// Event display string.
    pub event: String,
    /// `Some(reason)` when the event could not be applied (the instance
    /// and plan are unchanged — the stream keeps going).
    pub skipped: Option<String>,
    /// Plan cost after this event.
    pub cost: f64,
    /// Ladder rung the event's solve settled on.
    pub quality: PlanQuality,
    /// Plan stability: L1 distance in units between the carried plan and
    /// the re-planned one (0 = the old plan survived unchanged).
    pub churn: u64,
    /// Benders certificates that survived this event's perturbation.
    pub certs_retained: u64,
    /// Benders certificates the perturbation invalidated.
    pub certs_dropped: u64,
    /// Whether a chaos link-flap was recovered during this event.
    pub flapped: bool,
    /// Whether this event was restored from a checkpoint instead of
    /// being re-solved.
    pub resumed: bool,
    /// Wall time spent on this event, milliseconds (0 when restored
    /// from a checkpoint — nothing was solved).
    pub millis: f64,
}

/// Outcome of a full churn stream.
#[derive(Clone, Debug)]
pub struct ReplanReport {
    /// Cost of the plan the stream started from.
    pub initial_cost: f64,
    /// Cost of the final plan.
    pub final_cost: f64,
    /// Units per link of the final plan (indexed by the final instance's
    /// link table).
    pub final_units: Vec<u32>,
    /// The instance after every applied event.
    pub net: Network,
    /// Per-event outcomes, in stream order.
    pub events: Vec<EventReport>,
    /// Events restored from a checkpoint instead of re-solved.
    pub resumed: usize,
    /// Per-stage retry/backoff/degrade trace.
    pub supervision: SupervisionReport,
    /// Evaluator instrumentation accumulated across the stream
    /// (perturbation surgery counters included).
    pub eval_stats: EvalStats,
}

impl ReplanReport {
    /// Events whose perturbation was applied (not skipped).
    pub fn applied(&self) -> usize {
        self.events.iter().filter(|e| e.skipped.is_none()).count()
    }

    /// Events skipped because their perturbation failed validation.
    pub fn skipped(&self) -> usize {
        self.events.len() - self.applied()
    }
}

impl NeuroPlan {
    /// Plan from scratch, then run the event stream incrementally.
    ///
    /// Note the planning run and the re-planning stream share
    /// [`NeuroPlan::checkpoint_dir`]: the plan writes
    /// `checkpoint.jsonl`, the stream `replan.jsonl`, and a resume
    /// restores both.
    pub fn replan(
        &self,
        net: &Network,
        events: &[ChurnEvent],
        rcfg: &ReplanConfig,
    ) -> Result<ReplanReport, PlanFailure> {
        let planned = self.try_plan(net)?;
        self.replan_from(net, &planned.final_units, events, rcfg)
    }

    /// Run the event stream starting from an existing plan.
    ///
    /// `net`/`initial_units` are the instance and plan the stream starts
    /// from. With a checkpoint + `resume`, `net` may instead be a
    /// recorded *descendant* of the stream's start (the ancestor-chain
    /// relaxation of [`checkpoint::MetaMatch`]); `initial_units` and
    /// `events` must then still be the original stream spec, which is
    /// what the fingerprint chain is verified against.
    pub fn replan_from(
        &self,
        net: &Network,
        initial_units: &[u32],
        events: &[ChurnEvent],
        rcfg: &ReplanConfig,
    ) -> Result<ReplanReport, PlanFailure> {
        let _replan_span = self.tel.span(sys::PIPELINE, "replan");
        let chaos = np_chaos::global();
        let sup =
            Supervisor::new(self.cfg.supervisor, self.tel.clone()).with_cancel(self.cancel.clone());

        let mut cur = net.clone();
        let mut units = initial_units.to_vec();
        // A length mismatch is only legal on an ancestor resume (the
        // caller holds a perturbed descendant whose link table differs
        // from the stream's start); anywhere else it is caller error.
        let lengths_ok = units.len() == cur.link_ids().count();
        let resuming = self.resume && self.checkpoint_dir.is_some();
        if !lengths_ok && !resuming {
            return Err(PlanFailure::StageExhausted {
                stage: "replan".to_string(),
                reason: "initial plan does not have one entry per link".to_string(),
            });
        }
        let mut initial_cost = if lengths_ok {
            plan_cost_of(&cur, &units)
        } else {
            f64::NAN
        };
        let mut cost = initial_cost;
        let mut quality = PlanQuality::Optimal;
        let mut eval_stats = EvalStats::default();
        let mut reports: Vec<EventReport> = Vec::with_capacity(events.len());

        // ---- checkpoint: locate ourselves in the recorded chain ------
        let ckpt = self.checkpoint_dir.as_ref().map(|d| d.join("replan.jsonl"));
        let event_strs: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        let knob_bits = [
            rcfg.gap_tol.to_bits(),
            rcfg.prune_alpha.map_or(u64::MAX, f64::to_bits),
            rcfg.flap_seed,
        ];
        let stream = checkpoint::replan_stream_tag(&event_strs, initial_units, &knob_bits);
        let mut start = 0usize;
        let mut eval_blob: Option<String> = None;
        if let Some(path) = &ckpt {
            let fp_now = checkpoint::fingerprint(&cur, &self.cfg);
            let mut kept: Vec<ReplanEventRecord> = Vec::new();
            let mut total_decoded = 0usize;
            let mut meta_ok = false;
            let mut meta_body: Option<serde_json::Value> = None;
            if self.resume {
                let records = read_records(path);
                let decoded: Vec<ReplanEventRecord> = records
                    .iter()
                    .skip(1)
                    .take_while(|r| r.kind == "replan_event")
                    .filter_map(|r| checkpoint::decode_replan_event(&r.body))
                    .collect();
                total_decoded = decoded.len();
                let meta = records.first().filter(|r| r.kind == "replan_meta");
                let fps: Vec<String> = decoded.iter().map(|r| r.fp.clone()).collect();
                let class = match meta {
                    Some(m) => checkpoint::classify_replan_meta(&m.body, &stream, &fp_now, &fps),
                    None => MetaMatch::Mismatch,
                };
                let replay_from = match class {
                    MetaMatch::Exact => Some(0),
                    // The instance we hold *is* the state record `i`
                    // produced: adopt its plan and certificates, replay
                    // only what follows. The pre-stream cost comes from
                    // the meta record — the caller no longer holds the
                    // instance it was computed on.
                    MetaMatch::Ancestor(i) => {
                        for rec in &decoded[..=i] {
                            reports.push(report_of(rec, true));
                        }
                        if let Some(c0) = meta.and_then(|m| checkpoint::replan_meta_cost0(&m.body))
                        {
                            initial_cost = c0;
                        }
                        units = decoded[i].units.clone();
                        cost = decoded[i].cost;
                        quality = decoded[i].quality;
                        eval_blob = Some(decoded[i].eval.clone());
                        start = decoded[i].index + 1;
                        Some(i + 1)
                    }
                    MetaMatch::Mismatch => {
                        if !records.is_empty() {
                            eprintln!(
                                "warning: replan checkpoint in {} does not match this \
                                 instance/stream; starting fresh",
                                path.display()
                            );
                        }
                        None
                    }
                };
                if let Some(from) = replay_from {
                    meta_ok = true;
                    meta_body = meta.map(|m| m.body.clone());
                    kept = decoded[..from].to_vec();
                    for rec in &decoded[from..] {
                        if !replay_record(&mut cur, rec, &event_strs, rcfg, &self.cfg) {
                            break;
                        }
                        units = rec.units.clone();
                        cost = rec.cost;
                        quality = rec.quality;
                        eval_blob = Some(rec.eval.clone());
                        start = rec.index + 1;
                        reports.push(report_of(rec, true));
                        kept.push(rec.clone());
                    }
                }
            }
            if !meta_ok {
                if lengths_ok {
                    if let Some(dir) = path.parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    let _ = std::fs::remove_file(path);
                    self.append(
                        path,
                        "replan_meta",
                        checkpoint::replan_meta_body(&fp_now, &stream, initial_cost),
                        chaos,
                    );
                }
            } else if kept.len() < total_decoded {
                // Some trailing records were rejected (stale chain after
                // an earlier divergence): rewrite the file — keeping the
                // original meta record, which anchors the chain at the
                // stream's true start — so the next resume never sees
                // duplicate event indices.
                if let Some(body) = meta_body {
                    let _ = std::fs::remove_file(path);
                    self.append(path, "replan_meta", body, chaos);
                    for rec in &kept {
                        self.append(
                            path,
                            "replan_event",
                            checkpoint::replan_event_body(rec),
                            chaos,
                        );
                    }
                }
            }
        }
        if units.len() != cur.link_ids().count() {
            return Err(PlanFailure::StageExhausted {
                stage: "replan".to_string(),
                reason: "instance matches no recorded checkpoint ancestor and the initial \
                         plan does not fit its link table"
                    .to_string(),
            });
        }
        let resumed = reports.len();
        self.tel
            .incr(sys::PIPELINE, "replan_resumed_events", resumed as u64);

        // The evaluator is built on the instance as replay left it; the
        // snapshot restores every certificate the recorded run had
        // already derived, so resuming re-separates nothing that is
        // still valid.
        let mut evaluator = PlanEvaluator::with_telemetry(&cur, self.cfg.eval, self.tel.clone());
        if let Some(blob) = eval_blob {
            if !evaluator.restore_state(&blob) {
                eprintln!("warning: checkpointed evaluator state failed to restore; cuts will be re-derived");
            }
        }

        // ---- the live loop -------------------------------------------
        for k in start..events.len() {
            let _event_span = self.tel.span(sys::PIPELINE, "replan_event");
            self.tel.incr(sys::PIPELINE, "replan_events", 1);
            let event_t0 = std::time::Instant::now();
            let afp = ckpt
                .as_ref()
                .map(|_| checkpoint::fingerprint(&cur, &self.cfg));
            let mut flapped = false;
            // Chaos link-flap: a link drops mid-stream and comes back.
            // Recovery is two full incremental re-plans — down (traffic
            // rerouted onto the survivors) and up (the link re-added with
            // its exact former spec) — so the stream continues from a
            // plan that is feasible at every intermediate state.
            if chaos.should_fire(FaultClass::LinkFlap) {
                if let Some(victim) = flap_victim(&cur, rcfg.flap_seed, k) {
                    flapped = true;
                    self.tel.incr(sys::PIPELINE, "replan_flaps", 1);
                    let delta = cur
                        .apply_perturbation(&Perturbation::LinkRemove { link: victim })
                        .expect("flap victim was validated on a clone");
                    evaluator.apply_perturbation(&cur, &delta);
                    units = delta.carry_units(&cur, &units);
                    let spec = match &delta {
                        PerturbDelta::LinkRemove { spec, .. } => spec.clone(),
                        _ => unreachable!("link removal yields a LinkRemove delta"),
                    };
                    let (u, _, _) = self.replan_solve(&sup, &cur, &mut evaluator, &units, rcfg)?;
                    units = u;
                    let delta = cur
                        .apply_perturbation(&Perturbation::LinkAdd { link: spec })
                        .expect("re-adding a just-removed link is valid");
                    evaluator.apply_perturbation(&cur, &delta);
                    units = delta.carry_units(&cur, &units);
                    let (u, _, _) = self.replan_solve(&sup, &cur, &mut evaluator, &units, rcfg)?;
                    units = u;
                }
            }

            // Apply the event on a clone first: a perturbation that fails
            // validation — or that leaves some scenario with no surviving
            // path at any capacity — must not poison the live instance
            // (the evaluator's surgery has no inverse), so such an event
            // is skipped and the stream recovers by keeping the plan.
            let ev = &events[k];
            let mut skipped: Option<String> = None;
            let mut applied = false;
            match ev.to_perturbation(&cur) {
                Err(e) => skipped = Some(e.to_string()),
                Ok(p) => {
                    let mut cand = cur.clone();
                    match cand.apply_perturbation(&p) {
                        Err(e) => skipped = Some(e.to_string()),
                        Ok(delta) => {
                            if !np_churn::structurally_ok(&cand) {
                                skipped = Some(
                                    "perturbed instance is structurally infeasible".to_string(),
                                );
                            } else {
                                cur = cand;
                                evaluator.apply_perturbation(&cur, &delta);
                                units = delta.carry_units(&cur, &units);
                                applied = true;
                            }
                        }
                    }
                }
            }

            let carried = units.clone();
            if applied {
                let (u, c, q) = self.replan_solve(&sup, &cur, &mut evaluator, &carried, rcfg)?;
                units = u;
                cost = c;
                quality = q;
            } else {
                self.tel.incr(sys::PIPELINE, "replan_skipped", 1);
                cost = plan_cost_of(&cur, &units);
            }
            let churn: u64 = units
                .iter()
                .zip(carried.iter())
                .map(|(&a, &b)| u64::from(a.abs_diff(b)))
                .sum();
            let delta_stats = evaluator.take_stats();
            let (retained, dropped) = (
                delta_stats.perturb_certs_retained,
                delta_stats.perturb_certs_dropped,
            );
            eval_stats.merge(&delta_stats);

            if let (Some(path), Some(afp)) = (&ckpt, afp) {
                let rec = ReplanEventRecord {
                    index: k,
                    class: ev.class().to_string(),
                    event: event_strs[k].clone(),
                    ancestor_fp: afp,
                    fp: checkpoint::fingerprint(&cur, &self.cfg),
                    cost,
                    units: units.clone(),
                    eval: evaluator.snapshot_state(),
                    quality,
                    skipped: skipped.clone(),
                    churn,
                    retained,
                    dropped,
                    flapped,
                };
                self.append(
                    path,
                    "replan_event",
                    checkpoint::replan_event_body(&rec),
                    chaos,
                );
            }
            reports.push(EventReport {
                index: k,
                class: ev.class().to_string(),
                event: event_strs[k].clone(),
                skipped,
                cost,
                quality,
                churn,
                certs_retained: retained,
                certs_dropped: dropped,
                flapped,
                resumed: false,
                millis: event_t0.elapsed().as_secs_f64() * 1e3,
            });
        }

        Ok(ReplanReport {
            initial_cost,
            final_cost: cost,
            final_units: units,
            net: cur,
            events: reports,
            resumed,
            supervision: sup.report(),
            eval_stats,
        })
    }

    /// One incremental master solve under the supervisor ladder.
    ///
    /// The master is seeded with every certificate that survived the
    /// perturbations so far and warm-started from the carried plan —
    /// but only when that plan still verifies: `solve_master` installs
    /// its warm plan's cost as the branch-and-bound cutoff and may
    /// return the warm plan itself, so an infeasible carry must probe
    /// out before it reaches the solver.
    fn replan_solve(
        &self,
        sup: &Supervisor,
        net: &Network,
        evaluator: &mut PlanEvaluator,
        carried: &[u32],
        rcfg: &ReplanConfig,
    ) -> Result<(Vec<u32>, f64, PlanQuality), PlanFailure> {
        let mut bounds = match rcfg.prune_alpha {
            Some(alpha) => MasterConfig::pruned_bounds(net, carried, alpha),
            None => MasterConfig::spectrum_bounds(net),
        };
        let caps: Vec<f64> = carried
            .iter()
            .map(|&u| f64::from(u) * net.unit_gbps)
            .collect();
        let probe = evaluator.check(&caps);
        let warm_feasible = probe.feasible;
        let warm_cost = plan_cost_of(net, carried);
        let seed_cuts: Vec<MetricCut> = (0..evaluator.num_scenarios())
            .filter_map(|i| evaluator.certificate(i).cloned())
            .collect();
        self.tel
            .incr(sys::PIPELINE, "replan_seed_cuts", seed_cuts.len() as u64);
        let budget = self.cfg.supervisor.budget;

        // An infeasible *pruned* master is not an infeasible instance —
        // the α-box around the carried plan can exclude every feasible
        // point (a demand surge needs more than α× capacity somewhere).
        // One retry with full spectrum bounds settles which it is.
        let mut tried_full = rcfg.prune_alpha.is_none();
        let failure = loop {
            let master_try = sup.run("replan_master", |ctx| {
                if ctx.exhausted() {
                    return Err(StageError::Transient(
                        "stage budget exhausted before the re-plan master solve".to_string(),
                    ));
                }
                let node_limit = {
                    let scaled = self
                        .cfg
                        .mip_node_limit
                        .saturating_mul(ctx.attempt as usize + 1);
                    match budget.max_nodes {
                        Some(cap) => scaled.min(cap),
                        None => scaled,
                    }
                };
                let cfg = MasterConfig {
                    upper_bounds: bounds.clone(),
                    cutoff: warm_feasible.then_some(warm_cost * (1.0 + 1e-9) + 1e-9),
                    node_limit,
                    time_limit_secs: self.cfg.mip_time_limit_secs.min(ctx.remaining_secs()),
                    max_cuts_per_round: 8,
                    seed_cuts: seed_cuts.clone(),
                    granularity: 1,
                    gap_tol: rcfg.gap_tol,
                    warm_units: warm_feasible.then(|| carried.to_vec()),
                    polish_final: true,
                    lp_backend: self.cfg.lp_backend,
                };
                let outcome = solve_master_telemetry(net, evaluator, &cfg, &self.tel);
                if outcome.has_plan() {
                    let q = if outcome.status == MipStatus::Optimal {
                        PlanQuality::Optimal
                    } else {
                        PlanQuality::Incumbent
                    };
                    Ok((outcome, q))
                } else if outcome.status == MipStatus::Infeasible {
                    Err(StageError::Fatal(
                        "master proved the perturbed instance infeasible".to_string(),
                    ))
                } else {
                    Err(StageError::Transient(format!(
                        "master returned no incumbent (status {:?})",
                        outcome.status
                    )))
                }
            });
            match master_try {
                Ok((outcome, q)) => return Ok((outcome.units, outcome.cost, q)),
                Err(StageError::Fatal(_)) if !tried_full => {
                    tried_full = true;
                    self.tel.incr(sys::PIPELINE, "replan_prune_fallbacks", 1);
                    bounds = MasterConfig::spectrum_bounds(net);
                }
                Err(e) => break e,
            }
        };

        // Cancellation never walks the ladder — not even to the carried
        // plan; the caller asked the run to stop, not to degrade.
        if matches!(failure, StageError::Cancelled) {
            return Err(PlanFailure::Cancelled);
        }

        // The ladder: LP rounding, then the carried plan (when feasible).
        if sup.may_degrade() {
            sup.note_degrade("replan_master", PlanQuality::Rounded);
            let rounded = sup.run("replan_lp_round", |ctx| {
                if ctx.exhausted() {
                    return Err(StageError::Transient(
                        "stage budget exhausted before LP rounding".to_string(),
                    ));
                }
                let cfg = MasterConfig {
                    upper_bounds: bounds.clone(),
                    cutoff: None,
                    node_limit: self.cfg.mip_node_limit,
                    time_limit_secs: self.cfg.mip_time_limit_secs,
                    max_cuts_per_round: 8,
                    seed_cuts: Vec::new(),
                    granularity: 1,
                    gap_tol: rcfg.gap_tol,
                    warm_units: None,
                    polish_final: false,
                    lp_backend: self.cfg.lp_backend,
                };
                let mut deadline = || ctx.remaining_secs() <= 0.0;
                match lp_round_plan(net, evaluator, &cfg, &mut deadline, &self.tel) {
                    Some((units, cost)) => Ok((units, cost)),
                    None => Err(StageError::Transient(
                        "LP rounding found no verifiable plan".to_string(),
                    )),
                }
            });
            if let Ok((units, cost)) = rounded {
                return Ok((units, cost, PlanQuality::Rounded));
            }
            if warm_feasible {
                sup.note_degrade("replan_lp_round", PlanQuality::Heuristic);
                sup.note_skip("replan_heuristic");
                return Ok((carried.to_vec(), warm_cost, PlanQuality::Heuristic));
            }
        }
        Err(match failure {
            StageError::Fatal(reason) => PlanFailure::Infeasible { reason },
            StageError::Cancelled => PlanFailure::Cancelled,
            StageError::Transient(reason) => PlanFailure::StageExhausted {
                stage: "replan_master".to_string(),
                reason,
            },
        })
    }
}

fn report_of(rec: &ReplanEventRecord, resumed: bool) -> EventReport {
    EventReport {
        index: rec.index,
        class: rec.class.clone(),
        event: rec.event.clone(),
        skipped: rec.skipped.clone(),
        cost: rec.cost,
        quality: rec.quality,
        churn: rec.churn,
        certs_retained: rec.retained,
        certs_dropped: rec.dropped,
        flapped: rec.flapped,
        resumed,
        millis: 0.0,
    }
}

/// Re-apply one recorded event's perturbations (flap included, solves
/// excluded) to `cur`, verify-then-commit: `cur` is only mutated when
/// the whole record replays cleanly and lands on the recorded
/// fingerprint. `false` = the chain diverges here; the caller re-solves
/// from this event onward.
fn replay_record(
    cur: &mut Network,
    rec: &ReplanEventRecord,
    event_strs: &[String],
    rcfg: &ReplanConfig,
    cfg: &crate::config::NeuroPlanConfig,
) -> bool {
    let k = rec.index;
    if k >= event_strs.len() || rec.event != event_strs[k] {
        return false;
    }
    if rec.ancestor_fp != checkpoint::fingerprint(cur, cfg) {
        return false;
    }
    let mut next = cur.clone();
    if rec.flapped && !replay_flap(&mut next, rcfg.flap_seed, k) {
        return false;
    }
    if rec.skipped.is_none() {
        let Ok(ev) = ChurnEvent::parse(&rec.event) else {
            return false;
        };
        let Ok(p) = ev.to_perturbation(&next) else {
            return false;
        };
        if next.apply_perturbation(&p).is_err() || !np_churn::structurally_ok(&next) {
            return false;
        }
    }
    if checkpoint::fingerprint(&next, cfg) != rec.fp {
        return false;
    }
    *cur = next;
    true
}

/// Deterministic flap victim for event `k`: a seeded starting point in
/// the link table, then the first link whose removal validates and
/// leaves every scenario structurally feasible. `None` when no link can
/// be dropped (the flap is then recorded as not having happened).
fn flap_victim(net: &Network, flap_seed: u64, k: usize) -> Option<LinkId> {
    let n = net.link_ids().count();
    if n <= 1 {
        return None;
    }
    let mut s = flap_seed ^ (k as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let start = (np_churn::splitmix64(&mut s) % n as u64) as usize;
    for j in 0..n {
        let victim = LinkId::new((start + j) % n);
        let mut cand = net.clone();
        if cand
            .apply_perturbation(&Perturbation::LinkRemove { link: victim })
            .is_ok()
            && np_churn::structurally_ok(&cand)
        {
            return Some(victim);
        }
    }
    None
}

/// Replay a recorded flap: remove the (deterministically re-derived)
/// victim and re-add its exact spec, without the intermediate solves.
fn replay_flap(net: &mut Network, flap_seed: u64, k: usize) -> bool {
    let Some(victim) = flap_victim(net, flap_seed, k) else {
        return false;
    };
    let Ok(delta) = net.apply_perturbation(&Perturbation::LinkRemove { link: victim }) else {
        return false;
    };
    let PerturbDelta::LinkRemove { spec, .. } = delta else {
        return false;
    };
    net.apply_perturbation(&Perturbation::LinkAdd { link: spec })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeuroPlanConfig;
    use crate::pipeline::validate_plan;
    use np_churn::ChurnSpec;
    use np_topology::generator::GeneratorConfig;

    fn planned(seed: u64) -> (Network, Vec<u32>) {
        let net = GeneratorConfig::a_variant(0.5).generate();
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(seed));
        let result = planner.plan(&net);
        (net, result.final_units)
    }

    #[test]
    fn stream_of_every_class_replans_and_validates() {
        let (net, units) = planned(7);
        let spec =
            "demand-scale:1.1; link-add:0; fiber-cost:0:1.5; failure-add:fiber:0; link-remove:1";
        let events = ChurnSpec::parse(spec).unwrap().resolve(&net);
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(7));
        let report = planner
            .replan_from(&net, &units, &events, &ReplanConfig::default())
            .expect("stream replans");
        assert_eq!(report.events.len(), events.len());
        // Every event either applied or recovered by skipping — never a
        // failure — and the final plan verifies on the final instance.
        validate_plan(&report.net, &report.final_units).expect("final plan validates");
        assert!(report.final_cost > 0.0);
        assert!(report.eval_stats.perturb_certs_retained > 0);
    }

    #[test]
    fn infeasible_event_is_skipped_and_stream_recovers() {
        let (net, units) = planned(11);
        // Removing every link one after another must eventually hit an
        // event that would disconnect a demand; the stream skips it and
        // the final plan still validates.
        let n = net.link_ids().count();
        let events: Vec<ChurnEvent> = (0..n)
            .map(|_| ChurnEvent::parse("link-remove:0").unwrap())
            .collect();
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(11));
        let report = planner
            .replan_from(&net, &units, &events, &ReplanConfig::default())
            .expect("stream survives infeasible events");
        assert!(report.skipped() > 0, "some removal must be infeasible");
        assert!(report.net.link_ids().count() >= 1);
        validate_plan(&report.net, &report.final_units).expect("final plan validates");
    }

    #[test]
    fn generated_stream_applies_every_event() {
        let (net, units) = planned(13);
        let events = np_churn::generate_stream(&net, 99, 6);
        let planner = NeuroPlan::new(NeuroPlanConfig::quick().with_seed(13));
        let report = planner
            .replan_from(&net, &units, &events, &ReplanConfig::default())
            .expect("generated stream replans");
        // Generated streams are pre-validated on a scratch instance, so
        // nothing is skipped.
        assert_eq!(report.skipped(), 0);
        assert_eq!(report.applied(), events.len());
        validate_plan(&report.net, &report.final_units).expect("final plan validates");
    }
}
