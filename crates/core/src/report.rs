//! Interpretability reporting (§4.3): operators can inspect the pruning
//! strategy the RL agent generated before committing the ILP to it.

use np_topology::{LinkId, Network};

/// A human-auditable summary of the first-stage pruning.
#[derive(Clone, Debug)]
pub struct PruningReport {
    /// Per-link `(baseline, first-stage plan, pruned bound, spectrum bound)`
    /// in capacity units.
    pub per_link: Vec<(LinkId, u32, u32, u32, u32)>,
    /// Relax factor used.
    pub alpha: f64,
}

impl PruningReport {
    /// Build from the pieces the pipeline already has.
    pub fn new(
        net: &Network,
        plan_units: &[u32],
        pruned: &[u32],
        spectrum: &[u32],
        alpha: f64,
    ) -> Self {
        let per_link = net
            .link_ids()
            .map(|l| {
                let i = l.index();
                (l, net.base_units(l), plan_units[i], pruned[i], spectrum[i])
            })
            .collect();
        PruningReport { per_link, alpha }
    }

    /// log10 of the search-space size (product of per-link ranges) under
    /// the pruned bounds.
    pub fn pruned_space_log10(&self) -> f64 {
        self.per_link
            .iter()
            .map(|&(_, base, _, ub, _)| f64::from(ub.saturating_sub(base) + 1).log10())
            .sum()
    }

    /// log10 of the unpruned (spectrum-only) search-space size.
    pub fn full_space_log10(&self) -> f64 {
        self.per_link
            .iter()
            .map(|&(_, base, _, _, spec)| f64::from(spec.saturating_sub(base) + 1).log10())
            .sum()
    }

    /// Orders of magnitude the RL stage removed from the ILP search space
    /// — the headline interpretability number.
    pub fn reduction_log10(&self) -> f64 {
        (self.full_space_log10() - self.pruned_space_log10()).max(0.0)
    }

    /// Render a table an operator can eyeball, mirroring the paper's
    /// "examine the solution from the RL agent" workflow.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Pruning report (alpha = {}): search space 10^{:.1} -> 10^{:.1} \
             ({:.1} orders of magnitude removed)\n",
            self.alpha,
            self.full_space_log10(),
            self.pruned_space_log10(),
            self.reduction_log10()
        ));
        out.push_str("link    base  rl-plan  bound  spectrum\n");
        for &(l, base, plan, ub, spec) in &self.per_link {
            out.push_str(&format!("{l:<7} {base:>4}  {plan:>7}  {ub:>5}  {spec:>8}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn reduction_is_nonnegative_and_reported() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let n = net.links().len();
        let plan: Vec<u32> = net.link_ids().map(|l| net.base_units(l) + 2).collect();
        let pruned: Vec<u32> = plan.iter().map(|&u| u + 1).collect();
        let spectrum = crate::master::MasterConfig::spectrum_bounds(&net);
        let report = PruningReport::new(&net, &plan, &pruned, &spectrum, 1.5);
        assert_eq!(report.per_link.len(), n);
        assert!(report.reduction_log10() > 0.0, "spectrum bounds dwarf pruned bounds");
        let text = report.describe();
        assert!(text.contains("alpha = 1.5"));
        assert!(text.lines().count() >= n + 2);
    }

    #[test]
    fn equal_bounds_mean_zero_reduction() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let spectrum = crate::master::MasterConfig::spectrum_bounds(&net);
        let plan = spectrum.clone();
        let report = PruningReport::new(&net, &plan, &spectrum, &spectrum, 2.0);
        assert_eq!(report.reduction_log10(), 0.0);
    }
}
