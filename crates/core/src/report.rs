//! Interpretability reporting (§4.3): operators can inspect the pruning
//! strategy the RL agent generated before committing the ILP to it, and
//! — via [`PhaseReport`] — see where a run's wall-clock and solver work
//! actually went.

use np_telemetry::Telemetry;
use np_topology::{LinkId, Network};
use std::fmt::Write as _;

/// A human-auditable summary of the first-stage pruning.
#[derive(Clone, Debug)]
pub struct PruningReport {
    /// Per-link `(baseline, first-stage plan, pruned bound, spectrum bound)`
    /// in capacity units.
    pub per_link: Vec<(LinkId, u32, u32, u32, u32)>,
    /// Relax factor used.
    pub alpha: f64,
}

impl PruningReport {
    /// Build from the pieces the pipeline already has.
    pub fn new(
        net: &Network,
        plan_units: &[u32],
        pruned: &[u32],
        spectrum: &[u32],
        alpha: f64,
    ) -> Self {
        let per_link = net
            .link_ids()
            .map(|l| {
                let i = l.index();
                (l, net.base_units(l), plan_units[i], pruned[i], spectrum[i])
            })
            .collect();
        PruningReport { per_link, alpha }
    }

    /// log10 of the search-space size (product of per-link ranges) under
    /// the pruned bounds.
    pub fn pruned_space_log10(&self) -> f64 {
        self.per_link
            .iter()
            .map(|&(_, base, _, ub, _)| f64::from(ub.saturating_sub(base) + 1).log10())
            .sum()
    }

    /// log10 of the unpruned (spectrum-only) search-space size.
    pub fn full_space_log10(&self) -> f64 {
        self.per_link
            .iter()
            .map(|&(_, base, _, _, spec)| f64::from(spec.saturating_sub(base) + 1).log10())
            .sum()
    }

    /// Orders of magnitude the RL stage removed from the ILP search space
    /// — the headline interpretability number.
    pub fn reduction_log10(&self) -> f64 {
        (self.full_space_log10() - self.pruned_space_log10()).max(0.0)
    }

    /// Render a table an operator can eyeball, mirroring the paper's
    /// "examine the solution from the RL agent" workflow.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Pruning report (alpha = {}): search space 10^{:.1} -> 10^{:.1} \
             ({:.1} orders of magnitude removed)\n",
            self.alpha,
            self.full_space_log10(),
            self.pruned_space_log10(),
            self.reduction_log10()
        ));
        out.push_str("link    base  rl-plan  bound  spectrum\n");
        for &(l, base, plan, ub, spec) in &self.per_link {
            out.push_str(&format!(
                "{l:<7} {base:>4}  {plan:>7}  {ub:>5}  {spec:>8}\n"
            ));
        }
        out
    }
}

/// Per-phase time and counter breakdown of a telemetry-instrumented run.
///
/// Snapshots a [`Telemetry`] handle's aggregates so harnesses can render
/// (or assert on) where the time went: pipeline stage spans first with
/// their share of the `plan` total, then each subsystem's counters.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Span aggregates as `(sys, name, count, total_us)`.
    pub phases: Vec<(String, String, u64, u64)>,
    /// Counter totals as `(sys, name, value)`.
    pub counters: Vec<(String, String, u64)>,
}

impl PhaseReport {
    /// Snapshot the breakdown from a telemetry handle (empty if the
    /// handle is the no-op sink).
    pub fn from_telemetry(tel: &Telemetry) -> Self {
        PhaseReport {
            phases: tel.spans(),
            counters: tel.counters(),
        }
    }

    /// Total microseconds attributed to a span, 0 if absent.
    pub fn phase_us(&self, sys: &str, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|(s, n, _, _)| s == sys && n == name)
            .map_or(0, |&(_, _, _, t)| t)
    }

    /// A counter total, 0 if absent.
    pub fn counter(&self, sys: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(s, n, _)| s == sys && n == name)
            .map_or(0, |&(_, _, v)| v)
    }

    /// Render the operator-facing table: phase times (with percentage of
    /// the outermost `pipeline/plan` span when present) and counters.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() && self.counters.is_empty() {
            out.push_str("telemetry: no events recorded\n");
            return out;
        }
        let total = self.phase_us("pipeline", "plan");
        if !self.phases.is_empty() {
            out.push_str("phase breakdown:\n");
            for (sys, name, count, us) in &self.phases {
                let pct = if total > 0 {
                    format!("{:>5.1}%", *us as f64 * 100.0 / total as f64)
                } else {
                    "     -".to_string()
                };
                writeln!(
                    out,
                    "  {sys:<8} {name:<28} {:>10.3} ms  {pct}  ({count}x)",
                    *us as f64 / 1e3
                )
                .unwrap();
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (sys, name, value) in &self.counters {
                writeln!(out, "  {sys:<8} {name:<28} {value:>12}").unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn reduction_is_nonnegative_and_reported() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let n = net.links().len();
        let plan: Vec<u32> = net.link_ids().map(|l| net.base_units(l) + 2).collect();
        let pruned: Vec<u32> = plan.iter().map(|&u| u + 1).collect();
        let spectrum = crate::master::MasterConfig::spectrum_bounds(&net);
        let report = PruningReport::new(&net, &plan, &pruned, &spectrum, 1.5);
        assert_eq!(report.per_link.len(), n);
        assert!(
            report.reduction_log10() > 0.0,
            "spectrum bounds dwarf pruned bounds"
        );
        let text = report.describe();
        assert!(text.contains("alpha = 1.5"));
        assert!(text.lines().count() >= n + 2);
    }

    #[test]
    fn equal_bounds_mean_zero_reduction() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let spectrum = crate::master::MasterConfig::spectrum_bounds(&net);
        let plan = spectrum.clone();
        let report = PruningReport::new(&net, &plan, &spectrum, &spectrum, 2.0);
        assert_eq!(report.reduction_log10(), 0.0);
    }

    #[test]
    fn phase_report_renders_spans_and_counters() {
        let tel = Telemetry::memory();
        {
            let _outer = tel.span("pipeline", "plan");
            let _inner = tel.span("pipeline", "first_stage");
            tel.incr("eval", "scenario_checks", 17);
        }
        let report = PhaseReport::from_telemetry(&tel);
        assert!(report.phase_us("pipeline", "plan") > 0);
        assert_eq!(report.counter("eval", "scenario_checks"), 17);
        assert_eq!(report.counter("eval", "missing"), 0);
        let text = report.describe();
        assert!(text.contains("phase breakdown:"));
        assert!(text.contains("first_stage"));
        assert!(text.contains("scenario_checks"));
        assert!(
            text.contains('%'),
            "plan total present => percentages rendered"
        );
    }

    #[test]
    fn phase_report_of_noop_telemetry_is_empty() {
        let report = PhaseReport::from_telemetry(&Telemetry::noop());
        assert!(report.phases.is_empty() && report.counters.is_empty());
        assert!(report.describe().contains("no events recorded"));
    }
}
