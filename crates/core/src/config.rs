//! NeuroPlan configuration (Table 2 hyperparameters and pipeline knobs).

use np_eval::EvalConfig;
use np_rl::{AgentConfig, TrainConfig};
use np_supervisor::SupervisorConfig;
use serde::{Deserialize, Serialize};

/// Everything that parameterizes a NeuroPlan run.
///
/// Defaults mirror Table 2 where they are model-shape parameters (GNN
/// layers, MLP hidden sizes, learning rates, γ, λ, relax factor) and are
/// scaled down where they are compute budgets (epochs, steps per epoch) —
/// see DESIGN.md §6 for the calibration.
#[derive(Clone, Debug)]
pub struct NeuroPlanConfig {
    /// Agent architecture & learning rates.
    pub agent: AgentConfig,
    /// Epoch loop parameters.
    pub train: TrainConfig,
    /// Plan-evaluator configuration for the RL inner loop.
    pub eval: EvalConfig,
    /// Relax factor α of the second stage (Table 2: {1, 1.25, 1.5, 2}).
    pub relax_factor: f64,
    /// `m`: max capacity units one action adds (Table 2: {1, 4, 16}).
    pub max_units_per_step: usize,
    /// Branch-and-bound node budget for the second stage.
    pub mip_node_limit: usize,
    /// Wall-clock budget for the second stage, seconds.
    pub mip_time_limit_secs: f64,
    /// Post-training greedy rollouts used to extract the final
    /// first-stage plan.
    pub final_rollouts: usize,
    /// Master seed for the whole pipeline.
    pub seed: u64,
    /// Anytime-planning supervision: per-stage budgets, retry policy and
    /// the degradation ladder (DESIGN.md §11).
    pub supervisor: SupervisorConfig,
    /// Simplex basis engine for every master-problem LP (the CLI's
    /// `--lp-backend`). `Auto` defers to `NP_LP_BACKEND` and defaults to
    /// the sparse revised simplex; `Dense` restores the historical
    /// tableau, kept as the bit-exactness reference (DESIGN.md §12).
    pub lp_backend: np_lp::LpBackend,
}

impl Default for NeuroPlanConfig {
    fn default() -> Self {
        NeuroPlanConfig {
            agent: AgentConfig {
                encoder: np_rl::Encoder::Gcn,
                gnn_layers: 2,
                gnn_hidden: 64,
                mlp_hidden: vec![64, 64],
                // Table 2 learning rates are tuned for 1024 epochs of
                // GPU-scale batches; with our scaled-down epoch counts a
                // moderately larger step converges to the same plans.
                actor_lr: 3e-3,
                critic_lr: 1e-2,
                seed: 0,
            },
            train: TrainConfig {
                epochs: 80,
                steps_per_epoch: 1024,
                max_traj_len: 512,
                gamma: 0.99,
                lam: 0.97,
                normalize_advantages: true,
                truncation_penalty: -1.0,
                convergence_tol: 0.0,
                patience: 10,
                num_actors: 1,
                rollout_workers: 1,
                rollout_seed: 0,
                wall_limit_secs: f64::INFINITY,
                stop: None,
            },
            eval: {
                let mut eval = EvalConfig::default();
                // The RL loop's thousands of checks never pay for the
                // exact LP; borderline-inconclusive verdicts come back
                // conservatively infeasible, which only makes the agent
                // add a unit the second stage will trim.
                eval.check.allow_exact_lp = false;
                eval
            },
            relax_factor: 1.5,
            max_units_per_step: 4,
            mip_node_limit: 4000,
            mip_time_limit_secs: 120.0,
            final_rollouts: 8,
            seed: 0,
            supervisor: SupervisorConfig::default(),
            lp_backend: np_lp::LpBackend::Auto,
        }
    }
}

impl NeuroPlanConfig {
    /// A fast configuration for tests and `--quick` experiment runs.
    ///
    /// Debug builds (plain `cargo test`) shrink further: the matrix
    /// kernels are ~20x slower unoptimized and the point of the tests is
    /// the plumbing, not the learning curve.
    pub fn quick() -> Self {
        let mut cfg = Self::default();
        if cfg!(debug_assertions) {
            cfg.train.epochs = 5;
            cfg.train.steps_per_epoch = 128;
            cfg.train.max_traj_len = 96;
            cfg.mip_node_limit = 250;
            cfg.mip_time_limit_secs = 10.0;
            cfg.final_rollouts = 2;
        } else {
            cfg.train.epochs = 20;
            cfg.train.steps_per_epoch = 384;
            cfg.train.max_traj_len = 128;
            cfg.mip_node_limit = 20_000;
            cfg.mip_time_limit_secs = 90.0;
            cfg.final_rollouts = 4;
        }
        cfg.agent.gnn_hidden = 32;
        cfg.agent.mlp_hidden = vec![32, 32];
        cfg
    }

    /// Propagate the master seed into the sub-components.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.agent.seed = seed;
        self.train.rollout_seed = seed;
        self
    }

    /// Run the parallel execution paths on `workers` threads (the CLI's
    /// `--workers`): scenario evaluation, rollout collection and the
    /// decomposition's region loop all share this budget.
    ///
    /// Requesting workers — at *any* count, including 1 — also switches
    /// training to a fixed pool of 4 logical actors with per-actor RNG
    /// streams, so the learned policy and final plan depend only on the
    /// seed, never on the worker count. Without this call the legacy
    /// single-stream rollout is used (bit-identical to pre-parallel
    /// releases).
    pub fn with_workers(mut self, workers: usize) -> Self {
        let workers = workers.max(1);
        self.eval.parallel_workers = workers;
        self.train.rollout_workers = workers;
        self.train.num_actors = 4;
        self.train.rollout_seed = self.seed;
        self
    }

    /// Cap every supervised stage at `secs` wall-clock seconds (the
    /// CLI's `--stage-budget`). Also reseeds retry backoff jitter from
    /// the master seed so reruns are reproducible.
    pub fn with_stage_budget(mut self, secs: f64) -> Self {
        self.supervisor.budget.wall_secs = secs;
        self.supervisor.retry.seed = self.seed;
        self
    }

    /// Retries allowed per stage before the supervisor degrades or gives
    /// up (the CLI's `--max-retries`).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.supervisor.retry.max_retries = retries;
        self
    }

    /// Enable or disable the degradation ladder (the CLI's
    /// `--no-degrade` passes `false`). With degradation off, a stage
    /// that exhausts its budget without an incumbent is a hard error
    /// instead of falling back to rounding or the heuristic plan.
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.supervisor.degrade = degrade;
        self
    }

    /// Select the simplex basis engine (the CLI's `--lp-backend`).
    pub fn with_lp_backend(mut self, backend: np_lp::LpBackend) -> Self {
        self.lp_backend = backend;
        self
    }
}

/// The paper's Table 2, as data — used by the docs and to sanity-check
/// that our defaults stay within the published grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// "Max length per trajectory".
    pub max_traj_len: Vec<usize>,
    /// "Max epochs to train".
    pub max_epochs: usize,
    /// "Max length per epoch".
    pub max_epoch_len: Vec<usize>,
    /// "Max capacity units per step".
    pub max_units: Vec<usize>,
    /// "Number of GNN layers".
    pub gnn_layers: Vec<usize>,
    /// "MLP hidden layers".
    pub mlp_hidden: Vec<[usize; 2]>,
    /// "Actor learning rate".
    pub actor_lr: f64,
    /// "Critic learning rate".
    pub critic_lr: f64,
    /// "Relax factor α".
    pub relax_factor: Vec<f64>,
    /// "Discount factor γ".
    pub gamma: f64,
    /// "GAE Lambda λ".
    pub lam: f64,
}

impl Table2 {
    /// The published values.
    pub fn paper() -> Self {
        Table2 {
            max_traj_len: vec![1024, 2048, 4096, 8192],
            max_epochs: 1024,
            max_epoch_len: vec![1024, 2048, 4096, 8192],
            max_units: vec![1, 4, 16],
            gnn_layers: vec![0, 2, 4],
            mlp_hidden: vec![[64, 64], [256, 256], [512, 512]],
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            relax_factor: vec![1.0, 1.25, 1.5, 2.0],
            gamma: 0.99,
            lam: 0.97,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_stay_on_the_published_grid() {
        let t2 = Table2::paper();
        let cfg = NeuroPlanConfig::default();
        assert!(t2.gnn_layers.contains(&cfg.agent.gnn_layers));
        assert!(t2.max_units.contains(&cfg.max_units_per_step));
        assert!(t2.relax_factor.contains(&cfg.relax_factor));
        assert_eq!(cfg.train.gamma, t2.gamma);
        assert_eq!(cfg.train.lam, t2.lam);
        assert_eq!(cfg.agent.mlp_hidden, vec![64, 64]);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = NeuroPlanConfig::quick();
        let d = NeuroPlanConfig::default();
        assert!(q.train.epochs < d.train.epochs);
        assert!(q.train.steps_per_epoch < d.train.steps_per_epoch);
    }

    #[test]
    fn seed_propagates() {
        let cfg = NeuroPlanConfig::default().with_seed(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.agent.seed, 99);
        assert_eq!(cfg.train.rollout_seed, 99);
    }

    #[test]
    fn workers_set_every_parallel_path_but_pin_the_actor_count() {
        let one = NeuroPlanConfig::default().with_seed(7).with_workers(1);
        let four = NeuroPlanConfig::default().with_seed(7).with_workers(4);
        assert_eq!(one.eval.parallel_workers, 1);
        assert_eq!(four.eval.parallel_workers, 4);
        assert_eq!(four.train.rollout_workers, 4);
        // The logical actor count is a constant, so the training
        // trajectory is a function of the seed alone.
        assert_eq!(one.train.num_actors, four.train.num_actors);
        assert_eq!(one.train.rollout_seed, 7);
    }
}
