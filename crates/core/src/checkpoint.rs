//! Pipeline checkpoint records: encoding/decoding of the `meta`,
//! `epoch`, `first_stage` and `master` record bodies that
//! [`crate::NeuroPlan`] appends to `<checkpoint-dir>/checkpoint.jsonl`
//! (format: DESIGN.md §10; substrate: [`np_chaos::checkpoint`]).
//!
//! Every `f64` that must survive bit-exactly (costs, returns, cut
//! coefficients) travels as little-endian hex; small counters travel as
//! plain JSON numbers. Decoders return `None` on any shape mismatch —
//! the pipeline then ignores the checkpoint and starts fresh rather than
//! resuming from a record it cannot fully trust.

use crate::config::NeuroPlanConfig;
use crate::master::MasterOutcome;
use crate::pipeline::FirstStage;
use np_chaos::checkpoint::{f64_to_hex, fnv1a64, hex_to_f64};
use np_flow::MetricCut;
use np_lp::MipStatus;
use np_rl::{EpochStats, TrainProgress, TrainReport};
use np_supervisor::PlanQuality;
use np_topology::{LinkId, Network};
use serde_json::Value;

/// Stable fingerprint of (instance, run-shaping config). A resume under
/// a different topology, seed or budget must not splice runs together,
/// so the `meta` record carries this and mismatches discard the file.
pub fn fingerprint(net: &Network, cfg: &NeuroPlanConfig) -> String {
    // Supervisor knobs shape which rung of the ladder produced the
    // recorded result, so they are part of the fingerprint: a resume
    // under a different budget or retry policy must recompute, not
    // splice. The wall budget travels as bits so INFINITY is stable.
    let sup = &cfg.supervisor;
    // The *resolved* simplex backend is part of the fingerprint: the two
    // engines may reach equal-cost plans through different pivot
    // sequences, so a resume across a backend switch (flag or
    // NP_LP_BACKEND) must recompute rather than splice.
    let tag = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{:016x}|{:?}|{:?}|{}|{}|{:?}",
        cfg.seed,
        cfg.train.epochs,
        cfg.train.steps_per_epoch,
        cfg.train.num_actors,
        cfg.relax_factor,
        cfg.max_units_per_step,
        cfg.final_rollouts,
        cfg.mip_node_limit,
        sup.budget.wall_secs.to_bits(),
        sup.budget.max_nodes,
        sup.budget.max_epochs,
        sup.retry.max_retries,
        sup.degrade,
        cfg.lp_backend.resolved(),
    );
    format!(
        "{:016x}",
        fnv1a64(format!("{}\n{tag}", net.to_json()).as_bytes())
    )
}

/// Body of the `meta` record.
pub fn meta_body(fp: &str) -> Value {
    Value::Object(vec![("fp".to_string(), Value::Str(fp.to_string()))])
}

/// Whether `body` is a `meta` record matching `fp`.
pub fn meta_matches(body: &Value, fp: &str) -> bool {
    body.get("fp").and_then(Value::as_str) == Some(fp)
}

/// How a checkpoint relates to the instance a resume was asked for.
///
/// Historically a checkpoint was only usable on the *identical* run
/// (`Exact`). Re-planning relaxes that to *resumable ancestry*: a
/// checkpoint taken against topology `T` is still usable on a perturbed
/// `T′` when the chain of per-event records connects them — each record
/// carries the fingerprint of the state it was taken from (`afp`) and
/// the state it produced (`fp`), so the resume can locate the current
/// instance in the chain and replay only what follows. Unchanged runs
/// still match `Exact` and keep bit-identical kill-and-resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaMatch {
    /// The instance is the one the checkpoint started from.
    Exact,
    /// The instance is a recorded descendant: resume from the matching
    /// record (0-based index into the event records) instead of the top.
    Ancestor(usize),
    /// The checkpoint belongs to a different instance/stream; ignore it.
    Mismatch,
}

/// Stable tag of a churn stream + replan knobs. Part of the replan meta
/// record: resuming under a different event list or solver setting must
/// recompute, not splice. `events` are the event display strings;
/// `knob_bits` the replan config's numeric knobs as raw bits.
pub fn replan_stream_tag(events: &[String], initial_units: &[u32], knob_bits: &[u64]) -> String {
    let mut blob = events.join(";");
    blob.push('\n');
    for u in initial_units {
        blob.push_str(&format!("{u},"));
    }
    blob.push('\n');
    for b in knob_bits {
        blob.push_str(&format!("{b:016x},"));
    }
    format!("{:016x}", fnv1a64(blob.as_bytes()))
}

/// Body of the `replan_meta` record: the fingerprint of the pre-stream
/// instance, the stream tag, and the starting plan's cost (`cost0` —
/// an ancestor resume has no way to recompute it, since the caller no
/// longer holds the pre-stream instance).
pub fn replan_meta_body(fp: &str, stream: &str, cost0: f64) -> Value {
    Value::Object(vec![
        ("fp".to_string(), Value::Str(fp.to_string())),
        ("stream".to_string(), Value::Str(stream.to_string())),
        ("cost0".to_string(), Value::Str(f64_to_hex(cost0))),
    ])
}

/// The starting plan's cost recorded in a `replan_meta` body.
pub fn replan_meta_cost0(body: &Value) -> Option<f64> {
    hex_field(body, "cost0")
}

/// Whether `body` is a `replan_meta` record for this instance + stream.
pub fn replan_meta_matches(body: &Value, fp: &str, stream: &str) -> bool {
    body.get("fp").and_then(Value::as_str) == Some(fp)
        && body.get("stream").and_then(Value::as_str) == Some(stream)
}

/// Classify a resume request against a replan checkpoint: `fp_now` is
/// the fingerprint of the instance the caller holds, `meta` the decoded
/// `replan_meta` body, `event_fps` the post-event fingerprints of the
/// decoded event records in order.
pub fn classify_replan_meta(
    meta: &Value,
    stream: &str,
    fp_now: &str,
    event_fps: &[String],
) -> MetaMatch {
    if meta.get("stream").and_then(Value::as_str) != Some(stream) {
        return MetaMatch::Mismatch;
    }
    if meta.get("fp").and_then(Value::as_str) == Some(fp_now) {
        return MetaMatch::Exact;
    }
    match event_fps.iter().rposition(|fp| fp == fp_now) {
        Some(i) => MetaMatch::Ancestor(i),
        None => MetaMatch::Mismatch,
    }
}

/// One decoded `replan_event` record: everything the re-planning loop
/// needs to resume *after* this event without recomputing it — the plan
/// it settled on, the evaluator state (certificates included, so no
/// still-valid cut is re-derived), and the fingerprint chain that proves
/// the record belongs to this instance's history.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplanEventRecord {
    /// 0-based position in the event stream.
    pub index: usize,
    /// Event class (`demand-scale`, `link-add`, ...).
    pub class: String,
    /// Event display string (re-parseable by `np_churn`).
    pub event: String,
    /// Fingerprint of the instance *before* this event (the ancestor).
    pub ancestor_fp: String,
    /// Fingerprint of the instance *after* this event.
    pub fp: String,
    /// Plan cost after re-planning this event.
    pub cost: f64,
    /// Plan units after re-planning this event.
    pub units: Vec<u32>,
    /// [`np_eval::PlanEvaluator::snapshot_state`] blob taken after the
    /// event's solve (carries every retained certificate).
    pub eval: String,
    /// Ladder rung the event's solve settled on.
    pub quality: PlanQuality,
    /// `Some(reason)` when the event could not be applied and was skipped
    /// (the instance and plan are unchanged).
    pub skipped: Option<String>,
    /// L1 distance between the carried plan and the re-planned one.
    pub churn: u64,
    /// Certificates carried through the event's perturbation.
    pub retained: u64,
    /// Certificates invalidated by the event's perturbation.
    pub dropped: u64,
    /// Whether a chaos link-flap was recovered during this event.
    pub flapped: bool,
}

/// Body of a `replan_event` record.
pub fn replan_event_body(r: &ReplanEventRecord) -> Value {
    Value::Object(vec![
        ("k".to_string(), num(r.index as u64)),
        ("class".to_string(), Value::Str(r.class.clone())),
        ("event".to_string(), Value::Str(r.event.clone())),
        ("afp".to_string(), Value::Str(r.ancestor_fp.clone())),
        ("fp".to_string(), Value::Str(r.fp.clone())),
        ("cost".to_string(), Value::Str(f64_to_hex(r.cost))),
        ("units".to_string(), units_value(&r.units)),
        ("eval".to_string(), Value::Str(r.eval.clone())),
        (
            "quality".to_string(),
            Value::Str(r.quality.name().to_string()),
        ),
        (
            "skipped".to_string(),
            match &r.skipped {
                Some(reason) => Value::Str(reason.clone()),
                None => Value::Null,
            },
        ),
        ("churn".to_string(), num(r.churn)),
        ("retained".to_string(), num(r.retained)),
        ("dropped".to_string(), num(r.dropped)),
        ("flapped".to_string(), num(u64::from(r.flapped))),
    ])
}

/// Decode a `replan_event` record body.
pub fn decode_replan_event(body: &Value) -> Option<ReplanEventRecord> {
    let skipped = match body.get("skipped")? {
        Value::Null => None,
        v => Some(v.as_str()?.to_string()),
    };
    Some(ReplanEventRecord {
        index: u64_field(body, "k")? as usize,
        class: str_field(body, "class")?,
        event: str_field(body, "event")?,
        ancestor_fp: str_field(body, "afp")?,
        fp: str_field(body, "fp")?,
        cost: hex_field(body, "cost")?,
        units: units_field(body, "units")?,
        eval: str_field(body, "eval")?,
        quality: PlanQuality::from_name(&str_field(body, "quality")?)?,
        skipped,
        churn: u64_field(body, "churn")?,
        retained: u64_field(body, "retained")?,
        dropped: u64_field(body, "dropped")?,
        flapped: u64_field(body, "flapped")? != 0,
    })
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn str_field(body: &Value, key: &str) -> Option<String> {
    Some(body.get(key)?.as_str()?.to_string())
}

fn u64_field(body: &Value, key: &str) -> Option<u64> {
    body.get(key)?.as_u64()
}

fn hex_field(body: &Value, key: &str) -> Option<f64> {
    hex_to_f64(body.get(key)?.as_str()?)
}

fn units_value(units: &[u32]) -> Value {
    Value::Array(units.iter().map(|&u| num(u64::from(u))).collect())
}

fn units_field(body: &Value, key: &str) -> Option<Vec<u32>> {
    body.get(key)?
        .as_array()?
        .iter()
        .map(|v| v.as_u64().and_then(|u| u32::try_from(u).ok()))
        .collect()
}

/// One decoded `epoch` record: the loop counters a resume needs plus the
/// serialized agent and environment.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// This epoch's statistics.
    pub stats: EpochStats,
    /// Epoch index the resumed run continues from.
    pub next_epoch: usize,
    /// Convergence streak after this epoch.
    pub converged_run: usize,
    /// Mean return the next convergence check compares against.
    pub prev_return: f64,
    /// NaN rollbacks so far (feeds the recovery stream seed).
    pub recovery_nonce: u64,
    /// [`np_rl::ActorCritic::export_state`] blob.
    pub agent: String,
    /// [`np_rl::GraphEnv::state_json`] blob.
    pub env: String,
}

/// Body of an `epoch` record.
pub fn epoch_body(p: &TrainProgress<'_>, agent_blob: &str, env_blob: &str) -> Value {
    Value::Object(vec![
        ("epoch".to_string(), num(p.stats.epoch as u64)),
        (
            "mean_return".to_string(),
            Value::Str(f64_to_hex(p.stats.mean_return)),
        ),
        ("completed".to_string(), num(p.stats.completed as u64)),
        ("truncated".to_string(), num(p.stats.truncated as u64)),
        (
            "mean_length".to_string(),
            Value::Str(f64_to_hex(p.stats.mean_length)),
        ),
        ("next_epoch".to_string(), num(p.next_epoch as u64)),
        ("converged_run".to_string(), num(p.converged_run as u64)),
        (
            "prev_return".to_string(),
            Value::Str(f64_to_hex(p.prev_return)),
        ),
        ("recovery_nonce".to_string(), num(p.recovery_nonce)),
        ("agent".to_string(), Value::Str(agent_blob.to_string())),
        ("env".to_string(), Value::Str(env_blob.to_string())),
    ])
}

/// Decode an `epoch` record body.
pub fn decode_epoch(body: &Value) -> Option<EpochRecord> {
    Some(EpochRecord {
        stats: EpochStats {
            epoch: u64_field(body, "epoch")? as usize,
            mean_return: hex_field(body, "mean_return")?,
            completed: u64_field(body, "completed")? as usize,
            truncated: u64_field(body, "truncated")? as usize,
            mean_length: hex_field(body, "mean_length")?,
        },
        next_epoch: u64_field(body, "next_epoch")? as usize,
        converged_run: u64_field(body, "converged_run")? as usize,
        prev_return: hex_field(body, "prev_return")?,
        recovery_nonce: u64_field(body, "recovery_nonce")?,
        agent: str_field(body, "agent")?,
        env: str_field(body, "env")?,
    })
}

fn encode_cert(c: &MetricCut) -> Value {
    let mut s = f64_to_hex(c.rhs);
    for (l, w) in &c.coeff {
        s.push_str(&format!(";{},{}", l.index(), f64_to_hex(*w)));
    }
    Value::Str(s)
}

fn decode_cert(s: &str) -> Option<MetricCut> {
    let mut fields = s.split(';');
    let rhs = fields.next().and_then(hex_to_f64)?;
    let mut coeff = Vec::new();
    for f in fields {
        let (i, w) = f.split_once(',')?;
        coeff.push((LinkId::new(i.parse().ok()?), hex_to_f64(w)?));
    }
    Some(MetricCut { coeff, rhs })
}

/// Body of the `first_stage` record.
pub fn first_stage_body(first: &FirstStage) -> Value {
    Value::Object(vec![
        ("cost".to_string(), Value::Str(f64_to_hex(first.cost))),
        ("units".to_string(), units_value(&first.units)),
        (
            "rl_cost".to_string(),
            match first.rl_cost {
                Some(c) => Value::Str(f64_to_hex(c)),
                None => Value::Null,
            },
        ),
        (
            "reference_cost".to_string(),
            Value::Str(f64_to_hex(first.reference_cost)),
        ),
        (
            "certs".to_string(),
            Value::Array(first.certificates.iter().map(encode_cert).collect()),
        ),
    ])
}

/// Decode a `first_stage` record body. `report` supplies the per-epoch
/// stats (reassembled from the `epoch` records); the evaluator stats of
/// the original run are not reconstructed.
pub fn decode_first_stage(body: &Value, report: TrainReport) -> Option<FirstStage> {
    let rl_cost = match body.get("rl_cost")? {
        Value::Null => None,
        v => Some(hex_to_f64(v.as_str()?)?),
    };
    let certificates: Option<Vec<MetricCut>> = body
        .get("certs")?
        .as_array()?
        .iter()
        .map(|v| decode_cert(v.as_str()?))
        .collect();
    Some(FirstStage {
        units: units_field(body, "units")?,
        cost: hex_field(body, "cost")?,
        rl_cost,
        reference_cost: hex_field(body, "reference_cost")?,
        report,
        certificates: certificates?,
        stats: np_eval::EvalStats::default(),
    })
}

fn status_name(s: MipStatus) -> &'static str {
    match s {
        MipStatus::Optimal => "optimal",
        MipStatus::Feasible => "feasible",
        MipStatus::Infeasible => "infeasible",
        MipStatus::Limit => "limit",
        MipStatus::TimeLimit => "time-limit",
        MipStatus::Unbounded => "unbounded",
    }
}

fn status_from(name: &str) -> Option<MipStatus> {
    Some(match name {
        "optimal" => MipStatus::Optimal,
        "feasible" => MipStatus::Feasible,
        "infeasible" => MipStatus::Infeasible,
        "limit" => MipStatus::Limit,
        "time-limit" => MipStatus::TimeLimit,
        "unbounded" => MipStatus::Unbounded,
        _ => return None,
    })
}

/// Body of the `master` record. `quality` is the ladder rung the
/// supervised second stage settled on — a finished-run resume must
/// report the same [`PlanQuality`] the original run did, so it is part
/// of the record rather than re-derived.
pub fn master_body(m: &MasterOutcome, quality: PlanQuality) -> Value {
    Value::Object(vec![
        (
            "status".to_string(),
            Value::Str(status_name(m.status).to_string()),
        ),
        ("cost".to_string(), Value::Str(f64_to_hex(m.cost))),
        ("units".to_string(), units_value(&m.units)),
        ("nodes".to_string(), num(m.nodes as u64)),
        ("cuts_added".to_string(), num(m.cuts_added as u64)),
        (
            "best_bound".to_string(),
            Value::Str(f64_to_hex(m.best_bound)),
        ),
        ("overshoot_us".to_string(), num(m.deadline_overshoot_us)),
        (
            "quality".to_string(),
            Value::Str(quality.name().to_string()),
        ),
        ("rung".to_string(), num(u64::from(quality.rung()))),
    ])
}

/// Decode a `master` record body. Records written before the anytime
/// supervisor carry no quality field; those infer it from the status
/// (proven optimal → `Optimal`, anything with a plan → `Incumbent`).
pub fn decode_master(body: &Value) -> Option<(MasterOutcome, PlanQuality)> {
    let outcome = MasterOutcome {
        status: status_from(body.get("status")?.as_str()?)?,
        cost: hex_field(body, "cost")?,
        units: units_field(body, "units")?,
        nodes: u64_field(body, "nodes")? as usize,
        cuts_added: u64_field(body, "cuts_added")? as usize,
        best_bound: hex_field(body, "best_bound")?,
        deadline_overshoot_us: u64_field(body, "overshoot_us").unwrap_or(0),
    };
    let quality = body
        .get("quality")
        .and_then(Value::as_str)
        .and_then(PlanQuality::from_name)
        .unwrap_or(if outcome.status == MipStatus::Optimal {
            PlanQuality::Optimal
        } else {
            PlanQuality::Incumbent
        });
    Some((outcome, quality))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn fingerprint_separates_instances_and_configs() {
        let a = GeneratorConfig::preset(TopologyPreset::A).generate();
        let b = GeneratorConfig::preset(TopologyPreset::B).generate();
        let cfg = NeuroPlanConfig::quick();
        let fa = fingerprint(&a, &cfg);
        assert_eq!(fa, fingerprint(&a, &cfg), "fingerprint is stable");
        assert_ne!(fa, fingerprint(&b, &cfg), "topology changes it");
        assert_ne!(
            fa,
            fingerprint(&a, &cfg.clone().with_seed(9)),
            "seed changes it"
        );
        assert!(meta_matches(&meta_body(&fa), &fa));
        assert!(!meta_matches(&meta_body(&fa), "0000000000000000"));
    }

    #[test]
    fn epoch_record_round_trips() {
        let stats = EpochStats {
            epoch: 3,
            mean_return: -0.125,
            completed: 7,
            truncated: 1,
            mean_length: 42.5,
        };
        let p = TrainProgress {
            stats: &stats,
            next_epoch: 4,
            converged_run: 2,
            prev_return: -0.25,
            recovery_nonce: 1,
        };
        let body = epoch_body(&p, "AGENT", "ENV|with|pipes");
        let rec = decode_epoch(&body).expect("round trip");
        assert_eq!(rec.stats.epoch, 3);
        assert_eq!(rec.stats.mean_return.to_bits(), (-0.125f64).to_bits());
        assert_eq!(rec.next_epoch, 4);
        assert_eq!(rec.converged_run, 2);
        assert_eq!(rec.recovery_nonce, 1);
        assert_eq!(rec.agent, "AGENT");
        assert_eq!(rec.env, "ENV|with|pipes");
        assert!(decode_epoch(&Value::Null).is_none());
    }

    #[test]
    fn first_stage_record_round_trips_with_certificates() {
        let first = FirstStage {
            units: vec![1, 0, 3],
            cost: 123.456,
            rl_cost: None,
            reference_cost: 200.0,
            report: TrainReport::default(),
            certificates: vec![MetricCut {
                coeff: vec![(LinkId::new(0), 1.5), (LinkId::new(2), -0.5)],
                rhs: 10.0,
            }],
            stats: np_eval::EvalStats::default(),
        };
        let body = first_stage_body(&first);
        let back = decode_first_stage(&body, TrainReport::default()).expect("round trip");
        assert_eq!(back.units, first.units);
        assert_eq!(back.cost.to_bits(), first.cost.to_bits());
        assert_eq!(back.rl_cost, None);
        assert_eq!(back.certificates, first.certificates);
    }

    #[test]
    fn replan_event_record_round_trips() {
        let rec = ReplanEventRecord {
            index: 4,
            class: "link-remove".to_string(),
            event: "link-remove:2".to_string(),
            ancestor_fp: "00112233aabbccdd".to_string(),
            fp: "ffeeddcc44556677".to_string(),
            cost: 1234.5,
            units: vec![0, 3, 7],
            eval: "1|0|2|-|deadbeef;0,3ff0000000000000".to_string(),
            quality: PlanQuality::Incumbent,
            skipped: None,
            churn: 9,
            retained: 5,
            dropped: 2,
            flapped: true,
        };
        let back = decode_replan_event(&replan_event_body(&rec)).expect("round trip");
        assert_eq!(back, rec);
        let skipped = ReplanEventRecord {
            skipped: Some("structurally infeasible".to_string()),
            flapped: false,
            ..rec
        };
        let back = decode_replan_event(&replan_event_body(&skipped)).expect("round trip");
        assert_eq!(back, skipped);
        assert!(decode_replan_event(&Value::Null).is_none());
    }

    #[test]
    fn replan_meta_classifies_exact_ancestor_and_mismatch() {
        let stream = replan_stream_tag(
            &["demand-scale:1.1".to_string()],
            &[1, 2, 3],
            &[0, u64::MAX, 7],
        );
        let meta = replan_meta_body("aaaa000000000000", &stream, 512.25);
        assert!(replan_meta_matches(&meta, "aaaa000000000000", &stream));
        assert!(!replan_meta_matches(&meta, "bbbb000000000000", &stream));
        assert_eq!(
            replan_meta_cost0(&meta).map(f64::to_bits),
            Some(512.25f64.to_bits())
        );
        let fps = vec![
            "1111000000000000".to_string(),
            "2222000000000000".to_string(),
        ];
        assert_eq!(
            classify_replan_meta(&meta, &stream, "aaaa000000000000", &fps),
            MetaMatch::Exact
        );
        assert_eq!(
            classify_replan_meta(&meta, &stream, "2222000000000000", &fps),
            MetaMatch::Ancestor(1)
        );
        assert_eq!(
            classify_replan_meta(&meta, &stream, "9999000000000000", &fps),
            MetaMatch::Mismatch
        );
        // A different stream never matches, even from the exact instance.
        assert_eq!(
            classify_replan_meta(&meta, "other-stream", "aaaa000000000000", &fps),
            MetaMatch::Mismatch
        );
        // The tag is sensitive to every component of the stream spec.
        let other_events =
            replan_stream_tag(&["link-add:0".to_string()], &[1, 2, 3], &[0, u64::MAX, 7]);
        let other_units = replan_stream_tag(
            &["demand-scale:1.1".to_string()],
            &[1, 2],
            &[0, u64::MAX, 7],
        );
        assert_ne!(stream, other_events);
        assert_ne!(stream, other_units);
    }

    #[test]
    fn master_record_round_trips() {
        let m = MasterOutcome {
            status: MipStatus::TimeLimit,
            cost: 99.5,
            units: vec![2, 2, 0],
            nodes: 17,
            cuts_added: 4,
            best_bound: 80.25,
            deadline_overshoot_us: 123,
        };
        let (back, quality) =
            decode_master(&master_body(&m, PlanQuality::Incumbent)).expect("round trip");
        assert_eq!(back.status, m.status);
        assert_eq!(back.cost.to_bits(), m.cost.to_bits());
        assert_eq!(back.units, m.units);
        assert_eq!(back.nodes, 17);
        assert_eq!(back.best_bound.to_bits(), m.best_bound.to_bits());
        assert_eq!(back.deadline_overshoot_us, 123);
        assert_eq!(quality, PlanQuality::Incumbent);
    }

    #[test]
    fn pre_supervisor_master_records_infer_their_quality() {
        // A record written before the anytime supervisor: no quality,
        // rung or overshoot fields.
        let legacy = Value::Object(vec![
            ("status".to_string(), Value::Str("optimal".to_string())),
            ("cost".to_string(), Value::Str(f64_to_hex(10.0))),
            ("units".to_string(), units_value(&[1, 2])),
            ("nodes".to_string(), num(3)),
            ("cuts_added".to_string(), num(0)),
            ("best_bound".to_string(), Value::Str(f64_to_hex(10.0))),
        ]);
        let (back, quality) = decode_master(&legacy).expect("legacy decode");
        assert_eq!(back.deadline_overshoot_us, 0);
        assert_eq!(quality, PlanQuality::Optimal);
    }

    #[test]
    fn fingerprint_tracks_supervisor_knobs() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let cfg = NeuroPlanConfig::quick();
        let base = fingerprint(&net, &cfg);
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_stage_budget(30.0)),
            "stage budget changes it"
        );
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_degrade(false)),
            "degradation toggle changes it"
        );
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_max_retries(7)),
            "retry policy changes it"
        );
    }

    #[test]
    fn fingerprint_tracks_resolved_lp_backend() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let cfg = NeuroPlanConfig::quick();
        let dense = fingerprint(&net, &cfg.clone().with_lp_backend(np_lp::LpBackend::Dense));
        let sparse = fingerprint(&net, &cfg.clone().with_lp_backend(np_lp::LpBackend::Sparse));
        assert_ne!(dense, sparse, "backend switch changes the fingerprint");
        // Auto resolves to sparse unless NP_LP_BACKEND says otherwise, so
        // an explicit Sparse must fingerprint identically to the default.
        if np_lp::LpBackend::Auto.resolved() == np_lp::ResolvedBackend::Sparse {
            assert_eq!(sparse, fingerprint(&net, &cfg), "Auto == resolved Sparse");
        }
    }
}
