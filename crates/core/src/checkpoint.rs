//! Pipeline checkpoint records: encoding/decoding of the `meta`,
//! `epoch`, `first_stage` and `master` record bodies that
//! [`crate::NeuroPlan`] appends to `<checkpoint-dir>/checkpoint.jsonl`
//! (format: DESIGN.md §10; substrate: [`np_chaos::checkpoint`]).
//!
//! Every `f64` that must survive bit-exactly (costs, returns, cut
//! coefficients) travels as little-endian hex; small counters travel as
//! plain JSON numbers. Decoders return `None` on any shape mismatch —
//! the pipeline then ignores the checkpoint and starts fresh rather than
//! resuming from a record it cannot fully trust.

use crate::config::NeuroPlanConfig;
use crate::master::MasterOutcome;
use crate::pipeline::FirstStage;
use np_chaos::checkpoint::{f64_to_hex, fnv1a64, hex_to_f64};
use np_flow::MetricCut;
use np_lp::MipStatus;
use np_rl::{EpochStats, TrainProgress, TrainReport};
use np_supervisor::PlanQuality;
use np_topology::{LinkId, Network};
use serde_json::Value;

/// Stable fingerprint of (instance, run-shaping config). A resume under
/// a different topology, seed or budget must not splice runs together,
/// so the `meta` record carries this and mismatches discard the file.
pub fn fingerprint(net: &Network, cfg: &NeuroPlanConfig) -> String {
    // Supervisor knobs shape which rung of the ladder produced the
    // recorded result, so they are part of the fingerprint: a resume
    // under a different budget or retry policy must recompute, not
    // splice. The wall budget travels as bits so INFINITY is stable.
    let sup = &cfg.supervisor;
    // The *resolved* simplex backend is part of the fingerprint: the two
    // engines may reach equal-cost plans through different pivot
    // sequences, so a resume across a backend switch (flag or
    // NP_LP_BACKEND) must recompute rather than splice.
    let tag = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{:016x}|{:?}|{:?}|{}|{}|{:?}",
        cfg.seed,
        cfg.train.epochs,
        cfg.train.steps_per_epoch,
        cfg.train.num_actors,
        cfg.relax_factor,
        cfg.max_units_per_step,
        cfg.final_rollouts,
        cfg.mip_node_limit,
        sup.budget.wall_secs.to_bits(),
        sup.budget.max_nodes,
        sup.budget.max_epochs,
        sup.retry.max_retries,
        sup.degrade,
        cfg.lp_backend.resolved(),
    );
    format!(
        "{:016x}",
        fnv1a64(format!("{}\n{tag}", net.to_json()).as_bytes())
    )
}

/// Body of the `meta` record.
pub fn meta_body(fp: &str) -> Value {
    Value::Object(vec![("fp".to_string(), Value::Str(fp.to_string()))])
}

/// Whether `body` is a `meta` record matching `fp`.
pub fn meta_matches(body: &Value, fp: &str) -> bool {
    body.get("fp").and_then(Value::as_str) == Some(fp)
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn str_field(body: &Value, key: &str) -> Option<String> {
    Some(body.get(key)?.as_str()?.to_string())
}

fn u64_field(body: &Value, key: &str) -> Option<u64> {
    body.get(key)?.as_u64()
}

fn hex_field(body: &Value, key: &str) -> Option<f64> {
    hex_to_f64(body.get(key)?.as_str()?)
}

fn units_value(units: &[u32]) -> Value {
    Value::Array(units.iter().map(|&u| num(u64::from(u))).collect())
}

fn units_field(body: &Value, key: &str) -> Option<Vec<u32>> {
    body.get(key)?
        .as_array()?
        .iter()
        .map(|v| v.as_u64().and_then(|u| u32::try_from(u).ok()))
        .collect()
}

/// One decoded `epoch` record: the loop counters a resume needs plus the
/// serialized agent and environment.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// This epoch's statistics.
    pub stats: EpochStats,
    /// Epoch index the resumed run continues from.
    pub next_epoch: usize,
    /// Convergence streak after this epoch.
    pub converged_run: usize,
    /// Mean return the next convergence check compares against.
    pub prev_return: f64,
    /// NaN rollbacks so far (feeds the recovery stream seed).
    pub recovery_nonce: u64,
    /// [`np_rl::ActorCritic::export_state`] blob.
    pub agent: String,
    /// [`np_rl::GraphEnv::state_json`] blob.
    pub env: String,
}

/// Body of an `epoch` record.
pub fn epoch_body(p: &TrainProgress<'_>, agent_blob: &str, env_blob: &str) -> Value {
    Value::Object(vec![
        ("epoch".to_string(), num(p.stats.epoch as u64)),
        (
            "mean_return".to_string(),
            Value::Str(f64_to_hex(p.stats.mean_return)),
        ),
        ("completed".to_string(), num(p.stats.completed as u64)),
        ("truncated".to_string(), num(p.stats.truncated as u64)),
        (
            "mean_length".to_string(),
            Value::Str(f64_to_hex(p.stats.mean_length)),
        ),
        ("next_epoch".to_string(), num(p.next_epoch as u64)),
        ("converged_run".to_string(), num(p.converged_run as u64)),
        (
            "prev_return".to_string(),
            Value::Str(f64_to_hex(p.prev_return)),
        ),
        ("recovery_nonce".to_string(), num(p.recovery_nonce)),
        ("agent".to_string(), Value::Str(agent_blob.to_string())),
        ("env".to_string(), Value::Str(env_blob.to_string())),
    ])
}

/// Decode an `epoch` record body.
pub fn decode_epoch(body: &Value) -> Option<EpochRecord> {
    Some(EpochRecord {
        stats: EpochStats {
            epoch: u64_field(body, "epoch")? as usize,
            mean_return: hex_field(body, "mean_return")?,
            completed: u64_field(body, "completed")? as usize,
            truncated: u64_field(body, "truncated")? as usize,
            mean_length: hex_field(body, "mean_length")?,
        },
        next_epoch: u64_field(body, "next_epoch")? as usize,
        converged_run: u64_field(body, "converged_run")? as usize,
        prev_return: hex_field(body, "prev_return")?,
        recovery_nonce: u64_field(body, "recovery_nonce")?,
        agent: str_field(body, "agent")?,
        env: str_field(body, "env")?,
    })
}

fn encode_cert(c: &MetricCut) -> Value {
    let mut s = f64_to_hex(c.rhs);
    for (l, w) in &c.coeff {
        s.push_str(&format!(";{},{}", l.index(), f64_to_hex(*w)));
    }
    Value::Str(s)
}

fn decode_cert(s: &str) -> Option<MetricCut> {
    let mut fields = s.split(';');
    let rhs = fields.next().and_then(hex_to_f64)?;
    let mut coeff = Vec::new();
    for f in fields {
        let (i, w) = f.split_once(',')?;
        coeff.push((LinkId::new(i.parse().ok()?), hex_to_f64(w)?));
    }
    Some(MetricCut { coeff, rhs })
}

/// Body of the `first_stage` record.
pub fn first_stage_body(first: &FirstStage) -> Value {
    Value::Object(vec![
        ("cost".to_string(), Value::Str(f64_to_hex(first.cost))),
        ("units".to_string(), units_value(&first.units)),
        (
            "rl_cost".to_string(),
            match first.rl_cost {
                Some(c) => Value::Str(f64_to_hex(c)),
                None => Value::Null,
            },
        ),
        (
            "reference_cost".to_string(),
            Value::Str(f64_to_hex(first.reference_cost)),
        ),
        (
            "certs".to_string(),
            Value::Array(first.certificates.iter().map(encode_cert).collect()),
        ),
    ])
}

/// Decode a `first_stage` record body. `report` supplies the per-epoch
/// stats (reassembled from the `epoch` records); the evaluator stats of
/// the original run are not reconstructed.
pub fn decode_first_stage(body: &Value, report: TrainReport) -> Option<FirstStage> {
    let rl_cost = match body.get("rl_cost")? {
        Value::Null => None,
        v => Some(hex_to_f64(v.as_str()?)?),
    };
    let certificates: Option<Vec<MetricCut>> = body
        .get("certs")?
        .as_array()?
        .iter()
        .map(|v| decode_cert(v.as_str()?))
        .collect();
    Some(FirstStage {
        units: units_field(body, "units")?,
        cost: hex_field(body, "cost")?,
        rl_cost,
        reference_cost: hex_field(body, "reference_cost")?,
        report,
        certificates: certificates?,
        stats: np_eval::EvalStats::default(),
    })
}

fn status_name(s: MipStatus) -> &'static str {
    match s {
        MipStatus::Optimal => "optimal",
        MipStatus::Feasible => "feasible",
        MipStatus::Infeasible => "infeasible",
        MipStatus::Limit => "limit",
        MipStatus::TimeLimit => "time-limit",
        MipStatus::Unbounded => "unbounded",
    }
}

fn status_from(name: &str) -> Option<MipStatus> {
    Some(match name {
        "optimal" => MipStatus::Optimal,
        "feasible" => MipStatus::Feasible,
        "infeasible" => MipStatus::Infeasible,
        "limit" => MipStatus::Limit,
        "time-limit" => MipStatus::TimeLimit,
        "unbounded" => MipStatus::Unbounded,
        _ => return None,
    })
}

/// Body of the `master` record. `quality` is the ladder rung the
/// supervised second stage settled on — a finished-run resume must
/// report the same [`PlanQuality`] the original run did, so it is part
/// of the record rather than re-derived.
pub fn master_body(m: &MasterOutcome, quality: PlanQuality) -> Value {
    Value::Object(vec![
        (
            "status".to_string(),
            Value::Str(status_name(m.status).to_string()),
        ),
        ("cost".to_string(), Value::Str(f64_to_hex(m.cost))),
        ("units".to_string(), units_value(&m.units)),
        ("nodes".to_string(), num(m.nodes as u64)),
        ("cuts_added".to_string(), num(m.cuts_added as u64)),
        (
            "best_bound".to_string(),
            Value::Str(f64_to_hex(m.best_bound)),
        ),
        ("overshoot_us".to_string(), num(m.deadline_overshoot_us)),
        (
            "quality".to_string(),
            Value::Str(quality.name().to_string()),
        ),
        ("rung".to_string(), num(u64::from(quality.rung()))),
    ])
}

/// Decode a `master` record body. Records written before the anytime
/// supervisor carry no quality field; those infer it from the status
/// (proven optimal → `Optimal`, anything with a plan → `Incumbent`).
pub fn decode_master(body: &Value) -> Option<(MasterOutcome, PlanQuality)> {
    let outcome = MasterOutcome {
        status: status_from(body.get("status")?.as_str()?)?,
        cost: hex_field(body, "cost")?,
        units: units_field(body, "units")?,
        nodes: u64_field(body, "nodes")? as usize,
        cuts_added: u64_field(body, "cuts_added")? as usize,
        best_bound: hex_field(body, "best_bound")?,
        deadline_overshoot_us: u64_field(body, "overshoot_us").unwrap_or(0),
    };
    let quality = body
        .get("quality")
        .and_then(Value::as_str)
        .and_then(PlanQuality::from_name)
        .unwrap_or(if outcome.status == MipStatus::Optimal {
            PlanQuality::Optimal
        } else {
            PlanQuality::Incumbent
        });
    Some((outcome, quality))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn fingerprint_separates_instances_and_configs() {
        let a = GeneratorConfig::preset(TopologyPreset::A).generate();
        let b = GeneratorConfig::preset(TopologyPreset::B).generate();
        let cfg = NeuroPlanConfig::quick();
        let fa = fingerprint(&a, &cfg);
        assert_eq!(fa, fingerprint(&a, &cfg), "fingerprint is stable");
        assert_ne!(fa, fingerprint(&b, &cfg), "topology changes it");
        assert_ne!(
            fa,
            fingerprint(&a, &cfg.clone().with_seed(9)),
            "seed changes it"
        );
        assert!(meta_matches(&meta_body(&fa), &fa));
        assert!(!meta_matches(&meta_body(&fa), "0000000000000000"));
    }

    #[test]
    fn epoch_record_round_trips() {
        let stats = EpochStats {
            epoch: 3,
            mean_return: -0.125,
            completed: 7,
            truncated: 1,
            mean_length: 42.5,
        };
        let p = TrainProgress {
            stats: &stats,
            next_epoch: 4,
            converged_run: 2,
            prev_return: -0.25,
            recovery_nonce: 1,
        };
        let body = epoch_body(&p, "AGENT", "ENV|with|pipes");
        let rec = decode_epoch(&body).expect("round trip");
        assert_eq!(rec.stats.epoch, 3);
        assert_eq!(rec.stats.mean_return.to_bits(), (-0.125f64).to_bits());
        assert_eq!(rec.next_epoch, 4);
        assert_eq!(rec.converged_run, 2);
        assert_eq!(rec.recovery_nonce, 1);
        assert_eq!(rec.agent, "AGENT");
        assert_eq!(rec.env, "ENV|with|pipes");
        assert!(decode_epoch(&Value::Null).is_none());
    }

    #[test]
    fn first_stage_record_round_trips_with_certificates() {
        let first = FirstStage {
            units: vec![1, 0, 3],
            cost: 123.456,
            rl_cost: None,
            reference_cost: 200.0,
            report: TrainReport::default(),
            certificates: vec![MetricCut {
                coeff: vec![(LinkId::new(0), 1.5), (LinkId::new(2), -0.5)],
                rhs: 10.0,
            }],
            stats: np_eval::EvalStats::default(),
        };
        let body = first_stage_body(&first);
        let back = decode_first_stage(&body, TrainReport::default()).expect("round trip");
        assert_eq!(back.units, first.units);
        assert_eq!(back.cost.to_bits(), first.cost.to_bits());
        assert_eq!(back.rl_cost, None);
        assert_eq!(back.certificates, first.certificates);
    }

    #[test]
    fn master_record_round_trips() {
        let m = MasterOutcome {
            status: MipStatus::TimeLimit,
            cost: 99.5,
            units: vec![2, 2, 0],
            nodes: 17,
            cuts_added: 4,
            best_bound: 80.25,
            deadline_overshoot_us: 123,
        };
        let (back, quality) =
            decode_master(&master_body(&m, PlanQuality::Incumbent)).expect("round trip");
        assert_eq!(back.status, m.status);
        assert_eq!(back.cost.to_bits(), m.cost.to_bits());
        assert_eq!(back.units, m.units);
        assert_eq!(back.nodes, 17);
        assert_eq!(back.best_bound.to_bits(), m.best_bound.to_bits());
        assert_eq!(back.deadline_overshoot_us, 123);
        assert_eq!(quality, PlanQuality::Incumbent);
    }

    #[test]
    fn pre_supervisor_master_records_infer_their_quality() {
        // A record written before the anytime supervisor: no quality,
        // rung or overshoot fields.
        let legacy = Value::Object(vec![
            ("status".to_string(), Value::Str("optimal".to_string())),
            ("cost".to_string(), Value::Str(f64_to_hex(10.0))),
            ("units".to_string(), units_value(&[1, 2])),
            ("nodes".to_string(), num(3)),
            ("cuts_added".to_string(), num(0)),
            ("best_bound".to_string(), Value::Str(f64_to_hex(10.0))),
        ]);
        let (back, quality) = decode_master(&legacy).expect("legacy decode");
        assert_eq!(back.deadline_overshoot_us, 0);
        assert_eq!(quality, PlanQuality::Optimal);
    }

    #[test]
    fn fingerprint_tracks_supervisor_knobs() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let cfg = NeuroPlanConfig::quick();
        let base = fingerprint(&net, &cfg);
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_stage_budget(30.0)),
            "stage budget changes it"
        );
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_degrade(false)),
            "degradation toggle changes it"
        );
        assert_ne!(
            base,
            fingerprint(&net, &cfg.clone().with_max_retries(7)),
            "retry policy changes it"
        );
    }

    #[test]
    fn fingerprint_tracks_resolved_lp_backend() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let cfg = NeuroPlanConfig::quick();
        let dense = fingerprint(&net, &cfg.clone().with_lp_backend(np_lp::LpBackend::Dense));
        let sparse = fingerprint(&net, &cfg.clone().with_lp_backend(np_lp::LpBackend::Sparse));
        assert_ne!(dense, sparse, "backend switch changes the fingerprint");
        // Auto resolves to sparse unless NP_LP_BACKEND says otherwise, so
        // an explicit Sparse must fingerprint identically to the default.
        if np_lp::LpBackend::Auto.resolved() == np_lp::ResolvedBackend::Sparse {
            assert_eq!(sparse, fingerprint(&net, &cfg), "Auto == resolved Sparse");
        }
    }
}
