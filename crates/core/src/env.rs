//! The planning environment: the RL side of Fig. 3/Fig. 4.
//!
//! State = node features over the node-link-transformed topology (§4.2);
//! actions = "(link, how many units)" additions, masked by the spectrum
//! constraint; reward = −(marginal cost)/normalizer, in `[-1, 0]` per
//! step; a trajectory is `done` when the plan evaluator confirms the
//! service expectations under every failure scenario.

use np_eval::{EvalConfig, PlanEvaluator};
use np_neural::{Csr, Matrix};
use np_rl::{GraphEnv, Observation};
use np_topology::{transform, LinkId, Network, PlanSnapshot};

/// Environment over one planning instance.
pub struct PlanningEnv {
    net: Network,
    adjacency: Csr,
    evaluator: PlanEvaluator,
    num_unit_choices: usize,
    /// Reward scale: total plan costs are divided by this so per-step
    /// rewards land in `[-1, 0]` (§4.2's reward scaling). Chosen as the
    /// cost of a known feasible plan (from [`crate::greedy_augment`]).
    reward_norm: f64,
    /// Cheapest feasible plan seen across all trajectories.
    best: Option<(f64, PlanSnapshot)>,
    caps_scratch: Vec<f64>,
    steps_taken: u64,
}

impl PlanningEnv {
    /// Build the environment. `reward_norm` must be a positive cost scale
    /// (callers use the greedy reference plan's cost).
    pub fn new(
        net: Network,
        eval_cfg: EvalConfig,
        num_unit_choices: usize,
        reward_norm: f64,
    ) -> Self {
        assert!(num_unit_choices >= 1);
        assert!(reward_norm > 0.0, "reward normalizer must be positive");
        let adjacency = {
            let g = transform(&net);
            Csr::from_triples(g.num_nodes(), &g.normalized_adjacency())
        };
        let evaluator = PlanEvaluator::new(&net, eval_cfg);
        let caps_scratch = vec![0.0; net.links().len()];
        PlanningEnv {
            net,
            adjacency,
            evaluator,
            num_unit_choices,
            reward_norm,
            best: None,
            caps_scratch,
            steps_taken: 0,
        }
    }

    /// Features per transformed node (= IP link). Static columns (length,
    /// darkness) break permutation symmetry; dynamic columns carry the
    /// plan state. Each column is normalized to mean 0 / std 1 across
    /// nodes (§4.2's state normalization).
    fn features(&self) -> Matrix {
        let links = self.net.links();
        let n = links.len();
        const F: usize = 5;
        let mut m = Matrix::zeros(n, F);
        for (i, link) in links.iter().enumerate() {
            let added = link
                .capacity_units
                .saturating_sub(self.net.base_units(LinkId::new(i)));
            m.set(i, 0, f64::from(link.capacity_units));
            m.set(i, 1, f64::from(added));
            m.set(i, 2, link.length_km);
            m.set(
                i,
                3,
                f64::from(self.net.spectrum_room_units(LinkId::new(i)).min(1_000)),
            );
            m.set(
                i,
                4,
                if self.net.base_units(LinkId::new(i)) == 0 {
                    1.0
                } else {
                    0.0
                },
            );
        }
        // Column-wise standardization.
        for c in 0..F {
            let mut mean = 0.0;
            for r in 0..n {
                mean += m.get(r, c);
            }
            mean /= n as f64;
            let mut var = 0.0;
            for r in 0..n {
                var += (m.get(r, c) - mean).powi(2);
            }
            let std = (var / n as f64).sqrt();
            for r in 0..n {
                let v = if std > 1e-9 {
                    (m.get(r, c) - mean) / std
                } else {
                    0.0
                };
                m.set(r, c, v);
            }
        }
        m
    }

    fn mask(&self) -> Vec<bool> {
        let n = self.net.links().len();
        let m = self.num_unit_choices;
        let mut mask = vec![false; n * m];
        for i in 0..n {
            let room = self.net.spectrum_room_units(LinkId::new(i));
            for k in 0..m {
                mask[i * m + k] = room >= (k as u32 + 1);
            }
        }
        mask
    }

    fn observation(&self) -> Observation {
        Observation {
            features: self.features(),
            action_mask: self.mask(),
        }
    }

    /// The cheapest feasible plan found so far, if any.
    pub fn best_plan(&self) -> Option<&(f64, PlanSnapshot)> {
        self.best.as_ref()
    }

    /// Forget the best plan (used between experiment phases).
    pub fn clear_best(&mut self) {
        self.best = None;
    }

    /// Immutable access to the instance (capacities reflect the current
    /// trajectory state).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The evaluator (e.g. to read its accumulated [`np_eval::EvalStats`]).
    pub fn evaluator_mut(&mut self) -> &mut PlanEvaluator {
        &mut self.evaluator
    }

    /// Environment steps taken since construction.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// The reward normalizer in use.
    pub fn reward_norm(&self) -> f64 {
        self.reward_norm
    }

    fn refresh_caps(&mut self) {
        for (i, link) in self.net.links().iter().enumerate() {
            self.caps_scratch[i] = f64::from(link.capacity_units) * self.net.unit_gbps;
        }
    }
}

impl GraphEnv for PlanningEnv {
    fn num_nodes(&self) -> usize {
        self.net.links().len()
    }

    fn feature_dim(&self) -> usize {
        5
    }

    fn num_unit_choices(&self) -> usize {
        self.num_unit_choices
    }

    fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    fn fork(&self) -> Option<Box<dyn GraphEnv + Send>> {
        // The child evaluates serially (the actor level owns the thread
        // budget) but keeps the parent's certificates, so parallel actors
        // start with the same short-circuit knowledge the serial run has.
        Some(Box::new(PlanningEnv {
            net: self.net.clone(),
            adjacency: self.adjacency.clone(),
            evaluator: self.evaluator.fork(&self.net),
            num_unit_choices: self.num_unit_choices,
            reward_norm: self.reward_norm,
            best: None,
            caps_scratch: vec![0.0; self.net.links().len()],
            steps_taken: 0,
        }))
    }

    fn absorb(&mut self, mut child: Box<dyn GraphEnv + Send>) {
        let Some(any) = child.as_any_mut() else {
            return;
        };
        let Some(child) = any.downcast_mut::<PlanningEnv>() else {
            return;
        };
        self.steps_taken += child.steps_taken;
        self.evaluator.absorb(&mut child.evaluator);
        // Strict `<` keeps the earlier-absorbed actor's plan on cost
        // ties, so the merged best is independent of worker count.
        if let Some((cost, snap)) = child.best.take() {
            if self.best.as_ref().is_none_or(|(c, _)| cost < *c) {
                self.best = Some((cost, snap));
            }
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Serialize what a checkpoint must preserve across a kill: the best
    /// plan (cost bit-exact as hex), the step counter and the evaluator's
    /// stateful cursor + certificate pool. Everything else (capacities,
    /// scratch) is rebuilt by the next `reset()`.
    fn state_json(&self) -> Option<String> {
        use np_chaos::checkpoint::f64_to_hex;
        let best = match &self.best {
            None => "-".to_string(),
            Some((cost, snap)) => {
                let units: Vec<String> = snap.as_slice().iter().map(u32::to_string).collect();
                format!("{}:{}", f64_to_hex(*cost), units.join(","))
            }
        };
        Some(format!(
            "1|{}|{}|{}",
            self.steps_taken,
            best,
            self.evaluator.snapshot_state()
        ))
    }

    /// Restore a [`GraphEnv::state_json`] blob. Returns `false` (leaving
    /// the environment untouched) on any version, shape or encoding
    /// mismatch — a foreign or corrupt blob degrades to a fresh start.
    fn restore_state_json(&mut self, blob: &str) -> bool {
        use np_chaos::checkpoint::hex_to_f64;
        let mut parts = blob.splitn(4, '|');
        let (Some(version), Some(steps), Some(best), Some(eval)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return false;
        };
        if version != "1" {
            return false;
        }
        let Ok(steps) = steps.parse::<u64>() else {
            return false;
        };
        let best = if best == "-" {
            None
        } else {
            let Some((cost_hex, units_csv)) = best.split_once(':') else {
                return false;
            };
            let Some(cost) = hex_to_f64(cost_hex) else {
                return false;
            };
            let units: Option<Vec<u32>> = units_csv.split(',').map(|u| u.parse().ok()).collect();
            let Some(units) = units else {
                return false;
            };
            if !cost.is_finite() || units.len() != self.net.links().len() {
                return false;
            }
            Some((cost, PlanSnapshot::from_units(units)))
        };
        // The evaluator validates fully before mutating, so a rejected
        // blob leaves `self` untouched.
        if !self.evaluator.restore_state(eval) {
            return false;
        }
        self.steps_taken = steps;
        self.best = best;
        true
    }

    fn reset(&mut self) -> Observation {
        self.net.reset_to_base();
        self.evaluator.reset();
        self.observation()
    }

    fn step(&mut self, action: usize) -> (Observation, f64, bool) {
        self.steps_taken += 1;
        let (node, units) = self.decode_action(action);
        let link = LinkId::new(node);
        debug_assert!(
            self.net.can_add_units(link, units),
            "masked action leaked through"
        );
        let marginal = self.net.marginal_cost(link, units);
        self.net
            .add_units(link, units)
            .expect("action mask guarantees spectrum room");
        let reward = -(marginal / self.reward_norm).min(1.0);
        self.refresh_caps();
        let caps = std::mem::take(&mut self.caps_scratch);
        let outcome = self.evaluator.check(&caps);
        self.caps_scratch = caps;
        let done = outcome.feasible;
        if done {
            let cost = self.net.plan_cost();
            if self.best.as_ref().is_none_or(|(c, _)| cost < *c) {
                self.best = Some((cost, self.net.snapshot()));
            }
        }
        (self.observation(), reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    fn env() -> PlanningEnv {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        PlanningEnv::new(net, EvalConfig::default(), 4, 100.0)
    }

    #[test]
    fn observation_shape_matches_topology() {
        let mut e = env();
        let n = e.network().links().len();
        let obs = e.reset();
        assert_eq!(obs.features.rows(), n);
        assert_eq!(obs.features.cols(), 5);
        assert_eq!(obs.action_mask.len(), n * 4);
        assert!(obs.has_valid_action());
    }

    #[test]
    fn features_are_column_standardized() {
        let mut e = env();
        let obs = e.reset();
        let n = obs.features.rows();
        for c in [0usize, 2] {
            let mean: f64 = (0..n).map(|r| obs.features.get(r, c)).sum::<f64>() / n as f64;
            assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
        }
    }

    #[test]
    fn step_adds_capacity_and_pays_cost() {
        let mut e = env();
        e.reset();
        let before = e.network().link(LinkId::new(0)).capacity_units;
        // Action 0 = (link 0, 1 unit).
        let (_, reward, _) = e.step(0);
        assert_eq!(e.network().link(LinkId::new(0)).capacity_units, before + 1);
        assert!(reward < 0.0, "adding capacity must cost");
        assert!(reward >= -1.0, "per-step reward is clamped to [-1, 0]");
    }

    #[test]
    fn reset_restores_base_capacities() {
        let mut e = env();
        e.reset();
        e.step(0);
        e.step(5);
        let obs = e.reset();
        let base: Vec<u32> = e
            .network()
            .link_ids()
            .map(|l| e.network().base_units(l))
            .collect();
        let now: Vec<u32> = e
            .network()
            .link_ids()
            .map(|l| e.network().link(l).capacity_units)
            .collect();
        assert_eq!(base, now);
        assert!(obs.has_valid_action());
    }

    #[test]
    fn trajectory_terminates_and_records_best_plan() {
        // Drive the env with a trivial round-robin policy until done; the
        // generator guarantees a feasible plan exists, so termination must
        // occur well within the step budget.
        let mut e = env();
        let mut obs = e.reset();
        let mut done = false;
        for step in 0..20_000 {
            let action = obs
                .action_mask
                .iter()
                .enumerate()
                .filter(|&(_, &ok)| ok)
                .map(|(i, _)| i)
                .nth(step % 7)
                .or_else(|| obs.action_mask.iter().position(|&ok| ok))
                .expect("some action must be valid");
            let (o, _, d) = e.step(action);
            obs = o;
            if d {
                done = true;
                break;
            }
        }
        assert!(
            done,
            "round-robin filling must eventually satisfy the demands"
        );
        let (cost, snap) = e.best_plan().expect("feasible plan recorded").clone();
        assert!(cost > 0.0);
        assert_eq!(snap.as_slice().len(), e.network().links().len());
    }

    #[test]
    fn state_blob_round_trips_best_plan_and_steps() {
        let mut e = env();
        let mut obs = e.reset();
        for _ in 0..20_000 {
            let action = obs
                .action_mask
                .iter()
                .position(|&ok| ok)
                .expect("an action must be valid");
            let (o, _, done) = e.step(action);
            obs = o;
            if done {
                break;
            }
        }
        let (cost, snap) = e.best_plan().expect("feasible plan found").clone();
        let blob = e.state_json().expect("planning env checkpoints");

        let mut fresh = env();
        assert!(fresh.restore_state_json(&blob), "blob must restore");
        assert_eq!(fresh.steps_taken(), e.steps_taken());
        let (rcost, rsnap) = fresh.best_plan().expect("best plan restored").clone();
        assert_eq!(cost.to_bits(), rcost.to_bits(), "cost is bit-exact");
        assert_eq!(snap.as_slice(), rsnap.as_slice());
        assert_eq!(fresh.state_json().unwrap(), blob, "re-export is identical");
    }

    #[test]
    fn restore_rejects_foreign_blobs() {
        let mut e = env();
        e.reset();
        assert!(!e.restore_state_json("2|0|-|1|0|0"), "wrong version");
        assert!(!e.restore_state_json("1|x|-|1|0|0"), "bad step count");
        assert!(!e.restore_state_json("1|0|zz:1,2|1|0|0"), "bad best plan");
        // A blob from a different topology (wrong cert count) is refused.
        let blob = e.state_json().unwrap();
        let net2 = GeneratorConfig::preset(TopologyPreset::B).generate();
        let mut other = PlanningEnv::new(net2, EvalConfig::default(), 4, 100.0);
        assert!(!other.restore_state_json(&blob));
        assert_eq!(other.steps_taken(), 0, "rejected restore leaves state");
    }

    #[test]
    fn action_mask_blocks_spectrum_violations() {
        let mut e = env();
        let mut obs = e.reset();
        // Exhaust link 0's spectrum by repeatedly adding max units.
        for _ in 0..100_000 {
            if !obs.action_mask[3] {
                break;
            }
            let (o, _, _) = e.step(3); // link 0, 4 units
            obs = o;
        }
        assert!(
            !obs.action_mask[3],
            "the 4-unit action on link 0 must eventually be masked"
        );
        // The 1-unit action may still be legal; if masked, room must be 0.
        let room = e.network().spectrum_room_units(LinkId::new(0));
        assert_eq!(obs.action_mask[0], room >= 1);
    }
}
