//! The second-stage ILP master (§4.3) with Benders metric cuts.
//!
//! Variables are *added capacity units* per IP link (`a_l`, integer) —
//! exactly the integer variables of the paper's Eq. 1, whose objective is
//! linear in `C_l` with the optical cost folded into each link's per-unit
//! cost. Static rows: spectrum (Eq. 4). The reliability constraints
//! (Eqs. 2–3 over every failure) are enforced lazily: every integer
//! candidate is checked by the plan evaluator, which returns
//! exactly-violated metric inequalities as cuts (see DESIGN.md §1 for the
//! equivalence argument).
//!
//! The search-space pruning of Fig. 2 enters through
//! [`MasterConfig::upper_bounds`]: NeuroPlan sets them to
//! `⌈α · C_l^{RL}⌉`, the raw-ILP baseline to the spectrum bound.

use np_eval::{PlanEvaluator, Separation};
use np_flow::MetricCut;
use np_lp::{
    solve_mip_telemetry, Cut, IncrementalLp, LpBackend, LpStatus, MipConfig, MipStatus, Model,
    Sense, SimplexConfig, VarId,
};
use np_telemetry::{sys, Telemetry};
use np_topology::{LinkId, Network};
use std::time::Instant;

/// Master-problem configuration.
#[derive(Clone, Debug)]
pub struct MasterConfig {
    /// Per-link *total* capacity upper bound, in units (≥ the link's
    /// baseline). This is where RL pruning bites.
    pub upper_bounds: Vec<u32>,
    /// Known feasible cost used as a branch-and-bound cutoff.
    pub cutoff: Option<f64>,
    /// Branch-and-bound node budget.
    pub node_limit: usize,
    /// Wall-clock budget, seconds.
    pub time_limit_secs: f64,
    /// Max cuts per separation round.
    pub max_cuts_per_round: usize,
    /// Cuts known before the search starts (e.g. every certificate the
    /// evaluator collected during RL training — free warm-start rows).
    pub seed_cuts: Vec<MetricCut>,
    /// Capacity-unit enlargement (§3.2's *topology transformation*
    /// heuristic): capacity is added in chunks of this many units. `1` is
    /// the exact formulation; ILP-heur uses larger chunks to shrink the
    /// integer lattice at the price of optimality.
    pub granularity: u32,
    /// Relative MIP gap at which the solve counts as optimal. Production
    /// Gurobi runs use comparable practical gaps; DESIGN.md records the
    /// calibration.
    pub gap_tol: f64,
    /// A known-feasible plan (total units per link) to warm-start from:
    /// it is 1-opt polished, installed as the incumbent/cutoff, and
    /// returned if the search finds nothing better — the mechanism behind
    /// §3.2's "warm-start solutions … help solvers converge faster".
    pub warm_units: Option<Vec<u32>>,
    /// Run the post-solve 1-opt polish inside [`solve_master`] (the
    /// historical behavior). The supervised pipeline sets this to
    /// `false` and runs polishing as its own budgeted stage instead.
    pub polish_final: bool,
    /// Simplex basis engine for every LP the master solves (B&B node
    /// relaxations and the LP-rounding loop). `Auto` defers to the
    /// `NP_LP_BACKEND` environment variable and defaults to sparse.
    pub lp_backend: LpBackend,
}

impl MasterConfig {
    /// The default practical optimality gap (2%): the bound our
    /// from-scratch B&B proves plateaus ~1.5-2% above the incumbent on
    /// these instances (root LP + GMI closure), so this is where
    /// "optimal" is declared; EXPERIMENTS.md discusses the calibration.
    pub const DEFAULT_GAP: f64 = 0.02;
}

impl MasterConfig {
    /// Bounds that only enforce spectrum (the unpruned "raw ILP" space).
    pub fn spectrum_bounds(net: &Network) -> Vec<u32> {
        net.link_ids()
            .map(|l| {
                let link = net.link(l);
                let per_fiber = link
                    .fiber_path
                    .iter()
                    .map(|&(f, eff)| (net.fiber(f).spectrum_ghz / eff).floor() as u32)
                    .min()
                    .unwrap_or(0);
                per_fiber.max(link.capacity_units)
            })
            .collect()
    }

    /// Bounds from a first-stage plan and relax factor α (Fig. 2):
    /// `⌈α · plan_l⌉`, clamped to the spectrum bound and the baseline.
    pub fn pruned_bounds(net: &Network, plan_units: &[u32], alpha: f64) -> Vec<u32> {
        assert!(alpha >= 1.0, "relax factor must be >= 1");
        let spectrum = Self::spectrum_bounds(net);
        plan_units
            .iter()
            .zip(net.link_ids())
            .map(|(&u, l)| {
                let relaxed = (f64::from(u) * alpha).ceil() as u32;
                relaxed.clamp(
                    net.link(l).min_units,
                    spectrum[l.index()].max(net.link(l).min_units),
                )
            })
            .collect()
    }
}

/// Result of a master solve.
#[derive(Clone, Debug)]
pub struct MasterOutcome {
    /// Underlying MILP status.
    pub status: MipStatus,
    /// Plan cost (Eq. 1 relative to baseline); `f64::INFINITY` if no
    /// incumbent was found.
    pub cost: f64,
    /// Total units per link of the incumbent (empty if none).
    pub units: Vec<u32>,
    /// Branch-and-bound nodes processed.
    pub nodes: usize,
    /// Benders cuts added during the search (lazy only, not seeds).
    pub cuts_added: usize,
    /// Proven lower bound on the optimal cost within the given bounds.
    pub best_bound: f64,
    /// Microseconds run past the wall budget inside uninterruptible
    /// separation rounds, MILP-internal rounds plus the master-level
    /// polish rounds (the latter also emitted as the
    /// `master.deadline_overshoot_us` counter).
    pub deadline_overshoot_us: u64,
}

impl MasterOutcome {
    /// Whether an implementable plan came back.
    pub fn has_plan(&self) -> bool {
        !self.units.is_empty()
    }
}

/// Build and solve the master for `net` within `cfg.upper_bounds`.
///
/// The `evaluator` is the cut oracle; its accumulated certificates are a
/// useful thing to pass back in as `seed_cuts` on later calls.
pub fn solve_master(
    net: &Network,
    evaluator: &mut PlanEvaluator,
    cfg: &MasterConfig,
) -> MasterOutcome {
    solve_master_telemetry(net, evaluator, cfg, &Telemetry::noop())
}

/// [`solve_master`] reporting through `tel`: separation rounds, Benders
/// rows generated, evaluator cut-reuse hits, incumbent improvements, and
/// a `solve_master` span (the inner MILP reports its own `lp` counters).
pub fn solve_master_telemetry(
    net: &Network,
    evaluator: &mut PlanEvaluator,
    cfg: &MasterConfig,
    tel: &Telemetry,
) -> MasterOutcome {
    let _solve_span = tel.span(sys::MASTER, "solve_master");
    let start = Instant::now();
    let reuse_before = evaluator.stats.cut_reuse_hits;
    let built = build_master_model(net, cfg);
    let MasterModel {
        model,
        avars,
        links,
        base,
        gran,
    } = built;
    let unit = net.unit_gbps;
    let g = f64::from(gran);

    let mip_cfg = MipConfig {
        node_limit: cfg.node_limit,
        time_limit_secs: cfg.time_limit_secs,
        gap_tol: cfg.gap_tol,
        int_tol: 1e-6,
        simplex: SimplexConfig {
            backend: cfg.lp_backend,
            ..SimplexConfig::default()
        },
        cutoff: cfg.cutoff,
    };
    // Polish and install the warm plan as the incumbent before searching
    // (must happen before the separator closure borrows the evaluator).
    // The polish loop runs the expensive separation oracle, so it gets
    // the same deadline accounting the MILP's own rounds have.
    let mut polish_overshoot_us = 0u64;
    let warm = cfg.warm_units.clone().map(|mut units| {
        polish_overshoot_us +=
            polish_units_budgeted(net, evaluator, &mut units, &start, cfg.time_limit_secs);
        let cost = plan_cost_of(net, &units);
        (units, cost)
    });
    let mip_cfg = MipConfig {
        cutoff: match (&warm, mip_cfg.cutoff) {
            (Some((_, wc)), Some(c)) => Some(c.min(wc * (1.0 + 1e-9) + 1e-9)),
            (Some((_, wc)), None) => Some(wc * (1.0 + 1e-9) + 1e-9),
            (None, c) => c,
        },
        // The warm polish spent part of the master's wall budget; the
        // MILP gets what is left, so the stage as a whole honors it.
        time_limit_secs: if mip_cfg.time_limit_secs.is_finite() {
            (mip_cfg.time_limit_secs - start.elapsed().as_secs_f64()).max(0.0)
        } else {
            mip_cfg.time_limit_secs
        },
        ..mip_cfg
    };
    let base_ref = &base;
    let links_ref = &links;
    let max_cuts = cfg.max_cuts_per_round;
    let mut caps = vec![0.0f64; links.len()];
    let mut cut_rounds: u64 = 0;
    let mut benders_rows: u64 = 0;
    let mut structural_infeasible: u64 = 0;
    let mut separator = |x: &[f64]| -> Vec<Cut> {
        for (i, _) in links_ref.iter().enumerate() {
            caps[i] = (f64::from(base_ref[i]) + g * x[i].max(0.0)) * unit;
        }
        match evaluator.separate(&caps, max_cuts) {
            Separation::Feasible => vec![],
            Separation::Cuts(cuts) => {
                cut_rounds += 1;
                let mut rows = Vec::new();
                for (k, cut) in cuts.iter().enumerate() {
                    if let Some((coeffs, rhs)) = cut_to_row(cut, &avars, base_ref, unit, g) {
                        if let Some((rc, rr)) = cg_round(&coeffs, rhs) {
                            rows.push(Cut {
                                name: format!("benders_cg_{k}"),
                                coeffs: rc,
                                sense: Sense::Ge,
                                rhs: rr,
                            });
                        }
                        rows.push(Cut {
                            name: format!("benders_{k}"),
                            coeffs,
                            sense: Sense::Ge,
                            rhs,
                        });
                    }
                }
                benders_rows += rows.len() as u64;
                rows
            }
            Separation::StructurallyInfeasible(_) => {
                structural_infeasible += 1;
                // No capacities fix this: force the master infeasible.
                vec![Cut {
                    name: "structurally-infeasible".into(),
                    coeffs: vec![],
                    sense: Sense::Ge,
                    rhs: 1.0,
                }]
            }
        }
    };
    let sol = solve_mip_telemetry(&model, &mip_cfg, Some(&mut separator), tel);

    let mut units: Vec<u32> = if sol.x.is_empty() {
        Vec::new()
    } else {
        links
            .iter()
            .map(|&l| base[l.index()] + gran * sol.x[avars[l.index()].0].round() as u32)
            .collect()
    };
    let mut cost = sol.objective;
    if !units.is_empty() {
        if cfg.polish_final {
            // 1-opt polishing: drop single units (most expensive links
            // first) while the plan stays feasible. This is the stage-2
            // trimming of "useless steps" the paper attributes to the
            // ILP, done as the solution-polishing heuristic every
            // commercial solver also runs. (The supervised pipeline
            // disables this and polishes as its own budgeted stage.)
            polish_overshoot_us +=
                polish_units_budgeted(net, evaluator, &mut units, &start, cfg.time_limit_secs);
        }
        cost = plan_cost_of(net, &units);
    }
    // Fall back to (or prefer) the polished warm plan when it wins.
    let mut incumbent_updates: u64 = 0;
    if !units.is_empty() {
        incumbent_updates += 1;
    }
    if let Some((wu, wc)) = warm {
        if units.is_empty() || wc < cost {
            units = wu;
            cost = wc;
            incumbent_updates += 1;
        }
    }
    if tel.is_enabled() {
        tel.incr(sys::MASTER, "cut_rounds", cut_rounds);
        tel.incr(sys::MASTER, "cuts_added", sol.cuts_added as u64);
        tel.incr(sys::MASTER, "benders_rows", benders_rows);
        tel.incr(sys::MASTER, "structural_infeasible", structural_infeasible);
        tel.incr(
            sys::MASTER,
            "cut_reuse_hits",
            evaluator.stats.cut_reuse_hits.saturating_sub(reuse_before),
        );
        tel.incr(sys::MASTER, "incumbent_updates", incumbent_updates);
        tel.incr(sys::MASTER, "deadline_overshoot_us", polish_overshoot_us);
        tel.record(sys::MASTER, "best_cost", cost);
    }
    MasterOutcome {
        status: sol.status,
        cost,
        units,
        nodes: sol.nodes,
        cuts_added: sol.cuts_added,
        best_bound: sol.best_bound.min(cost),
        deadline_overshoot_us: sol.deadline_overshoot_us + polish_overshoot_us,
    }
}

/// The master model plus the handles needed to map between model
/// variables and link capacity units.
struct MasterModel {
    model: Model,
    avars: Vec<VarId>,
    links: Vec<LinkId>,
    base: Vec<u32>,
    gran: u32,
}

/// Build the master MILP for `net` within `cfg.upper_bounds`: one
/// integer added-chunks variable per link, spectrum rows (Eq. 4), and
/// the seed cuts (raw + Chvátal–Gomory-rounded variants).
fn build_master_model(net: &Network, cfg: &MasterConfig) -> MasterModel {
    let links: Vec<LinkId> = net.link_ids().collect();
    assert_eq!(cfg.upper_bounds.len(), links.len());
    let base: Vec<u32> = links.iter().map(|&l| net.base_units(l)).collect();
    let unit = net.unit_gbps;
    let gran = cfg.granularity.max(1);
    let g = f64::from(gran);

    let mut model = Model::new("neuroplan-master");
    // a_l: added capacity *chunks* above baseline (each chunk = `gran`
    // units; gran = 1 is the exact formulation). The per-unit objective
    // already contains the amortized optical cost (Eq. 1's linear form).
    let avars: Vec<VarId> = links
        .iter()
        .map(|&l| {
            let i = l.index();
            let span = f64::from((cfg.upper_bounds[i].max(base[i]) - base[i]) / gran);
            let obj = g * net.unit_cost(l);
            model.add_var(format!("a_{l}"), 0.0, span, obj, true)
        })
        .collect();
    // Spectrum rows (Eq. 4).
    for f in net.fiber_ids() {
        let mut coeffs = Vec::new();
        let mut used_base = 0.0;
        for &l in net.links_over_fiber(f) {
            let eff = net
                .link(l)
                .fiber_path
                .iter()
                .find(|&&(ff, _)| ff == f)
                .map(|&(_, e)| e)
                .expect("link is over fiber");
            coeffs.push((avars[l.index()], eff * g));
            used_base += eff * f64::from(base[l.index()]);
        }
        if !coeffs.is_empty() {
            model.add_constr(
                format!("spec_{f}"),
                coeffs,
                Sense::Le,
                net.fiber(f).spectrum_ghz - used_base,
            );
        }
    }
    // Seed cuts (raw + Chvátal–Gomory-rounded variants).
    for (k, cut) in cfg.seed_cuts.iter().enumerate() {
        if let Some((coeffs, rhs)) = cut_to_row(cut, &avars, &base, unit, g) {
            if let Some((rc, rr)) = cg_round(&coeffs, rhs) {
                model.add_constr(format!("seed_cg_{k}"), rc, Sense::Ge, rr);
            }
            model.add_constr(format!("seed_{k}"), coeffs, Sense::Ge, rhs);
        }
    }
    MasterModel {
        model,
        avars,
        links,
        base,
        gran,
    }
}

/// Rung 2 of the degradation ladder: solve the master's *LP relaxation*,
/// round the fractional added-chunks up to integers, and repair against
/// the separation oracle — cuts violated by the rounded point are valid
/// rows that push the next LP iterate upward, so the loop converges like
/// a cutting-plane method at a tiny fraction of the MILP's cost. Returns
/// `(units, cost)` on the first rounded point every scenario accepts, or
/// `None` when `deadline` fires / the LP fails / the instance is
/// structurally infeasible.
pub fn lp_round_plan(
    net: &Network,
    evaluator: &mut PlanEvaluator,
    cfg: &MasterConfig,
    deadline: &mut dyn FnMut() -> bool,
    tel: &Telemetry,
) -> Option<(Vec<u32>, f64)> {
    let _span = tel.span(sys::MASTER, "lp_round");
    let MasterModel {
        model,
        avars,
        links,
        base,
        gran,
    } = build_master_model(net, cfg);
    let unit = net.unit_gbps;
    let g = f64::from(gran);
    let scfg = SimplexConfig {
        backend: cfg.lp_backend,
        collect_timing: tel.is_enabled() && np_telemetry::profiling(),
        ..SimplexConfig::default()
    };
    // One persistent LP lives across all separation rounds: each round
    // appends its cuts in place and the next solve re-optimizes from the
    // previous optimal basis (dual simplex on the sparse backend) instead
    // of rebuilding and re-solving from scratch. This loop only ever
    // appends, so it stays on `IncrementalLp`'s warm fast path (the
    // monotonicity assert still guards it); callers that must *retire*
    // rows — the churn re-planner invalidating Benders cuts — use
    // `IncrementalLp::add_tagged_row`/`remove_tagged`, which trade the
    // warm basis for a forced refactorization on the shrunken model.
    let mut inc = IncrementalLp::new(model, scfg);
    const MAX_ROUNDS: usize = 60;
    let result = 'rounds: {
        for round in 0..MAX_ROUNDS {
            if deadline() {
                break 'rounds None;
            }
            let lp = inc.solve();
            if lp.status != LpStatus::Optimal {
                break 'rounds None;
            }
            let units: Vec<u32> = links
                .iter()
                .map(|&l| {
                    let i = l.index();
                    base[i] + gran * (lp.x[avars[i].0] - 1e-9).ceil().max(0.0) as u32
                })
                .collect();
            let caps: Vec<f64> = units.iter().map(|&u| f64::from(u) * unit).collect();
            match evaluator.separate(&caps, cfg.max_cuts_per_round) {
                Separation::Feasible => {
                    tel.incr(sys::MASTER, "lp_round_rounds", round as u64 + 1);
                    let cost = plan_cost_of(net, &units);
                    break 'rounds Some((units, cost));
                }
                Separation::Cuts(cuts) => {
                    let rows_before = inc.num_rows();
                    for (k, cut) in cuts.iter().enumerate() {
                        if let Some((coeffs, rhs)) = cut_to_row(cut, &avars, &base, unit, g) {
                            if let Some((rc, rr)) = cg_round(&coeffs, rhs) {
                                inc.add_row(format!("round_cg_{round}_{k}"), rc, Sense::Ge, rr);
                            }
                            inc.add_row(format!("round_{round}_{k}"), coeffs, Sense::Ge, rhs);
                        }
                    }
                    if inc.num_rows() == rows_before {
                        // Every cut was satisfied by the baseline already:
                        // the oracle and the rounding disagree numerically
                        // and more rounds cannot make progress.
                        break 'rounds None;
                    }
                }
                Separation::StructurallyInfeasible(_) => break 'rounds None,
            }
        }
        None
    };
    if tel.is_enabled() {
        tel.incr(sys::LP, "refactorizations", inc.stats.refactorizations);
        tel.incr(sys::LP, "eta_len", inc.stats.peak_eta_len);
        tel.incr(sys::LP, "warm_start_pivots", inc.stats.warm_pivots);
        tel.incr(sys::LP, "cold_solves", inc.cold_solves);
        // Stage times (profiling only) as deferred leaf spans, charged to
        // the live `lp_round` span so self-time sums stay ≤ wall.
        let st = &inc.stats;
        if st.factor_us + st.ftran_btran_us + st.pricing_us > 0 {
            tel.record_span(sys::LP, "factorize", st.factor_us);
            tel.record_span(sys::LP, "ftran_btran", st.ftran_btran_us);
            tel.record_span(sys::LP, "pricing", st.pricing_us);
        }
    }
    result
}

/// Eq. 1 cost of a units vector relative to the network baseline.
pub fn plan_cost_of(net: &Network, units: &[u32]) -> f64 {
    net.link_ids()
        .map(|l| {
            let added = units[l.index()].saturating_sub(net.base_units(l));
            f64::from(added) * net.unit_cost(l)
        })
        .sum()
}

/// Greedy 1-opt descent: repeatedly remove single capacity units (most
/// expensive first) as long as every scenario stays feasible. Never goes
/// below a link's `min_units` (Eq. 5).
pub fn polish_units(net: &Network, evaluator: &mut PlanEvaluator, units: &mut [u32]) {
    polish_units_budgeted(net, evaluator, units, &Instant::now(), f64::INFINITY);
}

/// [`polish_units`] under the master's wall budget: stops (leaving a
/// still-feasible plan) once `start` has run for `limit_secs`, and
/// returns the microseconds by which the last uninterruptible separation
/// round overshot the budget — the same accounting contract as the
/// MILP's `lp.deadline_overshoot_us`. An infinite budget never stops and
/// returns 0, so the unbudgeted wrapper above is behavior-identical to
/// the historical polish.
pub(crate) fn polish_units_budgeted(
    net: &Network,
    evaluator: &mut PlanEvaluator,
    units: &mut [u32],
    start: &Instant,
    limit_secs: f64,
) -> u64 {
    let mut order: Vec<LinkId> = net.link_ids().collect();
    order.sort_by(|&a, &b| {
        net.unit_cost(b)
            .partial_cmp(&net.unit_cost(a))
            .expect("costs are finite")
    });
    let mut caps: Vec<f64> = units
        .iter()
        .map(|&u| f64::from(u) * net.unit_gbps)
        .collect();
    let mut overshoot = 0u64;
    // Overshoot helper mirroring np-lp's: time past the budget, in µs.
    let over_now = |start: &Instant| -> u64 {
        let over = start.elapsed().as_secs_f64() - limit_secs;
        if over > 0.0 {
            (over * 1e6) as u64
        } else {
            0
        }
    };
    loop {
        let mut improved = false;
        for &l in &order {
            let i = l.index();
            while units[i] > net.link(l).min_units {
                // Never *start* a separation round the budget no longer
                // covers; a round already in flight runs to completion
                // and its overrun is accounted below.
                if start.elapsed().as_secs_f64() >= limit_secs {
                    return overshoot;
                }
                caps[i] = f64::from(units[i] - 1) * net.unit_gbps;
                let sep = evaluator.separate(&caps, 1);
                overshoot += over_now(start);
                match sep {
                    Separation::Feasible => {
                        units[i] -= 1;
                        improved = true;
                    }
                    _ => {
                        caps[i] = f64::from(units[i]) * net.unit_gbps;
                        break;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    overshoot
}

/// Convert a metric cut over link capacities (Gbps) into a master row
/// over added-unit variables. Returns `None` when the row is trivially
/// satisfied by the baseline alone.
fn cut_to_row(
    cut: &MetricCut,
    avars: &[VarId],
    base: &[u32],
    unit_gbps: f64,
    granularity: f64,
) -> Option<(Vec<(VarId, f64)>, f64)> {
    let mut rhs = cut.rhs;
    let mut coeffs = Vec::with_capacity(cut.coeff.len());
    for &(l, w) in &cut.coeff {
        rhs -= w * f64::from(base[l.index()]) * unit_gbps;
        coeffs.push((avars[l.index()], w * unit_gbps * granularity));
    }
    if rhs <= 1e-9 {
        return None;
    }
    // Normalize the row to unit max-coefficient (a positive scaling of an
    // inequality): keeps every master row O(1) for the dense simplex.
    let max = coeffs.iter().map(|&(_, w)| w.abs()).fold(0.0f64, f64::max);
    if max <= 1e-12 {
        return None;
    }
    for (_, w) in &mut coeffs {
        *w /= max;
    }
    Some((coeffs, rhs / max))
}

/// Chvátal–Gomory rounding of a master row `Σ wᵢaᵢ ≥ rhs` with integer
/// `aᵢ ≥ 0`: for any δ > 0, `Σ ⌈wᵢ/δ⌉ aᵢ ≥ ⌈rhs/δ⌉` is valid (the LHS
/// dominates `Σ (wᵢ/δ)aᵢ ≥ rhs/δ` and is integral). With δ = max wᵢ the
/// rounded row often cuts deep into the fractional region the raw metric
/// inequality leaves open, which is where most of the covering
/// integrality gap lives.
fn cg_round(coeffs: &[(VarId, f64)], rhs: f64) -> Option<(Vec<(VarId, f64)>, f64)> {
    let delta = coeffs.iter().map(|&(_, w)| w).fold(0.0f64, f64::max);
    if delta <= 0.0 {
        return None;
    }
    let rounded: Vec<(VarId, f64)> = coeffs
        .iter()
        .map(|&(v, w)| (v, (w / delta - 1e-12).ceil().max(1.0)))
        .collect();
    let r = (rhs / delta - 1e-12).ceil();
    if r <= 0.0 {
        return None;
    }
    Some((rounded, r))
}

/// Apply a units vector to a network (two passes so that transient
/// spectrum states never block a valid final configuration).
pub fn apply_units(net: &mut Network, units: &[u32]) {
    let ids: Vec<LinkId> = net.link_ids().collect();
    for &l in &ids {
        if units[l.index()] < net.link(l).capacity_units {
            net.set_units(l, units[l.index()])
                .expect("reductions always fit spectrum");
        }
    }
    for &l in &ids {
        if units[l.index()] > net.link(l).capacity_units {
            net.set_units(l, units[l.index()])
                .expect("master solution respects spectrum rows");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_eval::EvalConfig;
    use np_topology::generator::GeneratorConfig;

    fn instance() -> Network {
        GeneratorConfig::a_variant(0.0).generate()
    }

    #[test]
    fn spectrum_bounds_are_positive_and_respect_baseline() {
        let net = GeneratorConfig::a_variant(1.0).generate();
        let bounds = MasterConfig::spectrum_bounds(&net);
        for l in net.link_ids() {
            assert!(bounds[l.index()] >= net.link(l).capacity_units);
            assert!(bounds[l.index()] > 0);
        }
    }

    #[test]
    fn pruned_bounds_scale_with_alpha() {
        let net = instance();
        let plan: Vec<u32> = net.link_ids().map(|l| (l.index() % 3) as u32).collect();
        let tight = MasterConfig::pruned_bounds(&net, &plan, 1.0);
        let loose = MasterConfig::pruned_bounds(&net, &plan, 2.0);
        for i in 0..plan.len() {
            assert!(tight[i] <= loose[i]);
            assert!(tight[i] >= net.link(LinkId::new(i)).min_units);
        }
    }

    #[test]
    fn master_finds_a_feasible_plan_from_scratch() {
        let net = instance();
        let mut evaluator = PlanEvaluator::new(&net, EvalConfig::default());
        let cfg = MasterConfig {
            upper_bounds: MasterConfig::spectrum_bounds(&net),
            cutoff: None,
            node_limit: 2000,
            time_limit_secs: 60.0,
            max_cuts_per_round: 8,
            seed_cuts: vec![],
            granularity: 1,
            gap_tol: MasterConfig::DEFAULT_GAP,
            warm_units: None,
            polish_final: true,
            lp_backend: LpBackend::Auto,
        };
        let out = solve_master(&net, &mut evaluator, &cfg);
        assert!(
            matches!(out.status, MipStatus::Optimal | MipStatus::Feasible),
            "status {:?}",
            out.status
        );
        assert!(out.has_plan());
        assert!(out.cuts_added > 0, "a dark network needs Benders cuts");
        // The plan must verify with a fresh evaluator, and its cost must
        // match Eq. 1 as computed by the topology layer.
        let mut net2 = net.clone();
        apply_units(&mut net2, &out.units);
        let mut fresh = PlanEvaluator::new(&net2, EvalConfig::default());
        assert!(
            fresh.check_network(&net2).feasible,
            "master plan must be feasible"
        );
        assert!(
            (net2.plan_cost() - out.cost).abs() <= 1e-6 * out.cost.abs().max(1.0),
            "master objective {} must equal Eq. 1 cost {}",
            out.cost,
            net2.plan_cost()
        );
    }

    #[test]
    fn tighter_bounds_can_only_cost_more() {
        let net = instance();
        // Feasible reference plan for bounds.
        let mut ref_net = net.clone();
        crate::greedy_augment(&mut ref_net, EvalConfig::default()).unwrap();
        let plan: Vec<u32> = ref_net
            .link_ids()
            .map(|l| ref_net.link(l).capacity_units)
            .collect();
        let run = |alpha: f64| {
            let mut evaluator = PlanEvaluator::new(&net, EvalConfig::default());
            let cfg = MasterConfig {
                upper_bounds: MasterConfig::pruned_bounds(&net, &plan, alpha),
                cutoff: None,
                node_limit: 2000,
                time_limit_secs: 60.0,
                max_cuts_per_round: 8,
                seed_cuts: vec![],
                granularity: 1,
                gap_tol: MasterConfig::DEFAULT_GAP,
                warm_units: None,
                polish_final: true,
                lp_backend: LpBackend::Auto,
            };
            solve_master(&net, &mut evaluator, &cfg)
        };
        let tight = run(1.0);
        let loose = run(1.5);
        assert!(tight.has_plan(), "the reference plan fits its own bounds");
        assert!(loose.has_plan());
        // A superset search space can only improve the *optimum*; the
        // returned incumbents are each within the solver's practical gap
        // of their optima, so compare with that band.
        assert!(
            loose.cost <= tight.cost * (1.0 + 2.0 * MasterConfig::DEFAULT_GAP) + 1e-6,
            "a larger α explores a superset: {} vs {}",
            loose.cost,
            tight.cost
        );
    }

    #[test]
    fn seed_cuts_are_honored() {
        let net = instance();
        let mut ev1 = PlanEvaluator::new(&net, EvalConfig::default());
        let base_cfg = MasterConfig {
            upper_bounds: MasterConfig::spectrum_bounds(&net),
            cutoff: None,
            node_limit: 2000,
            time_limit_secs: 60.0,
            max_cuts_per_round: 8,
            seed_cuts: vec![],
            granularity: 1,
            gap_tol: MasterConfig::DEFAULT_GAP,
            warm_units: None,
            polish_final: true,
            lp_backend: LpBackend::Auto,
        };
        let first = solve_master(&net, &mut ev1, &base_cfg);
        // Re-solve seeding the certificates the first run discovered: same
        // optimum, fewer lazy rounds.
        let seeds: Vec<_> = (0..ev1.num_scenarios())
            .filter_map(|i| ev1.certificate(i).cloned())
            .collect();
        assert!(!seeds.is_empty());
        let mut ev2 = PlanEvaluator::new(&net, EvalConfig::default());
        let cfg2 = MasterConfig {
            seed_cuts: seeds,
            ..base_cfg
        };
        let second = solve_master(&net, &mut ev2, &cfg2);
        // Same practical optimum either way (cuts_added counts GMI rows
        // too and is not monotone, so only the cost is asserted — within
        // the solver's optimality gap).
        let tol = MasterConfig::DEFAULT_GAP * first.cost.max(second.cost);
        assert!(
            (first.cost - second.cost).abs() <= tol,
            "seeded and unseeded optima diverge: {} vs {}",
            first.cost,
            second.cost
        );
    }
}
