//! `neuroplan` — command-line planner.
//!
//! ```text
//! neuroplan generate --preset b --fill 0.5 --out topo.json
//! neuroplan plan     --preset a [--alpha 1.5] [--quick|--default] [--seed 7]
//! neuroplan plan     --topology topo.json --out plan.json
//! neuroplan evaluate --topology topo.json --plan plan.json
//! neuroplan baseline --preset a --method ilp|ilp-heur
//! ```
//!
//! The JSON formats are `np_topology::Network::to_json` for topologies
//! and a flat `{"units": [u32...], "cost": f64}` object for plans.

use neuroplan::baselines::{solve_ilp, solve_ilp_heur, BaselineBudget};
use neuroplan::{validate_plan, NeuroPlan, NeuroPlanConfig, NeuroPlanService, ReplanConfig};
use np_chaos::signals;
use np_churn::ChurnSpec;
use np_eval::{EvalConfig, PlanEvaluator};
use np_telemetry::Telemetry;
use np_topology::generator::{GeneratorConfig, TopologyPreset};
use np_topology::Network;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  neuroplan generate [--preset <a..e> | --family <wan|ba|ws|er|grid|\
         community|clos> [--size-tier <a..f>] [--failure-model <none|cuts|full>]] \
         [--fill <0..1>] [--long-term] \
         [--seed <u64>] [--out <file>]\n  neuroplan plan [--preset <a..e> | --family \
         <name> [--size-tier <a..f>] [--failure-model <m>] | --topology \
         <file>] [--fill <0..1>] [--alpha <f64>] [--quick|--default] [--seed <u64>] \
         [--workers <n|auto>] [--stage-budget <secs>] [--max-retries <n>] [--no-degrade] \
         [--lp-backend <dense|sparse|auto>] \
         [--telemetry <file>] [--profile [--profile-out <file>]] \
         [--checkpoint-dir <dir>] [--resume] \
         [--chaos <spec>] [--out <file>]\n  neuroplan replan \
         [instance + plan flags as above] --events <spec|file> \
         [--gap <f64>] [--prune-alpha <f64>] [--flap-seed <u64>]\n  neuroplan evaluate \
         --topology <file> [--plan <file>] [--workers <n|auto>] [--telemetry <file>] \
         [--profile [--profile-out <file>]]\n  \
         neuroplan baseline [--preset <a..e> | --topology <file>] --method \
         <ilp|ilp-heur|decompose> [--time <secs>] [--workers <n|auto>] \
         [--telemetry <file>]\n  neuroplan serve \
         [--addr <host:port>] [--state-dir <dir>] [--workers <n|auto>] \
         [--queue-cap <n>] [--cache-cap <n>] [--telemetry <file>] [--chaos <spec>]\n  \
         neuroplan request --addr <host:port> --do \
         <run|submit|status|result|cancel|stats|shutdown> [--id <n>] \
         [--timeout <secs>] [instance flags as for plan] [--events <spec>] [--out <file>]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a}");
            usage();
        };
        match key {
            "long-term" | "quick" | "default" | "resume" | "no-degrade" | "profile" => {
                map.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let Some(v) = it.next() else {
                    eprintln!("--{key} needs a value");
                    usage();
                };
                map.insert(key.to_string(), v.clone());
            }
        }
    }
    map
}

fn preset_of(flags: &HashMap<String, String>) -> Option<TopologyPreset> {
    flags
        .get("preset")
        .map(|p| match p.to_ascii_lowercase().as_str() {
            "a" => TopologyPreset::A,
            "b" => TopologyPreset::B,
            "c" => TopologyPreset::C,
            "d" => TopologyPreset::D,
            "e" => TopologyPreset::E,
            other => {
                eprintln!("unknown preset {other}");
                usage()
            }
        })
}

/// `--family <name>` selects a scenario-matrix generator instead of the
/// paper-calibrated `--preset` WANs; `--size-tier <a..f>` and
/// `--failure-model <none|cuts|full>` refine the cell (`--fill` and
/// `--seed` apply to both generator surfaces).
fn family_network_of(flags: &HashMap<String, String>) -> Option<Network> {
    use np_topology::{FailureModel, FamilyConfig, SizeTier, TopologyFamily};
    let family = flags.get("family").map(|f| {
        TopologyFamily::parse(f).unwrap_or_else(|| {
            eprintln!("unknown family {f}; one of: wan ba ws er grid community clos");
            usage()
        })
    })?;
    let tier = match flags.get("size-tier") {
        Some(t) => SizeTier::parse(t).unwrap_or_else(|| {
            eprintln!("unknown size tier {t}; one of: a b c d e f");
            usage()
        }),
        None => SizeTier::B,
    };
    let mut cfg = FamilyConfig::new(family, tier);
    if let Some(m) = flags.get("failure-model") {
        cfg.failure_model = FailureModel::parse(m).unwrap_or_else(|| {
            eprintln!("unknown failure model {m}; one of: none cuts full");
            usage()
        });
    }
    if let Some(fill) = flags.get("fill") {
        cfg.capacity_fill = fill.parse().unwrap_or_else(|_| {
            eprintln!("--fill takes a number in [0,1]");
            exit(2)
        });
    }
    if let Some(seed) = flags.get("seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| {
            eprintln!("--seed takes a u64");
            exit(2)
        });
    }
    Some(cfg.try_generate().unwrap_or_else(|e| {
        eprintln!("invalid family config: {e}");
        exit(1)
    }))
}

fn load_network(flags: &HashMap<String, String>) -> Network {
    if let Some(path) = flags.get("topology") {
        if flags.contains_key("family") {
            eprintln!("--family conflicts with --topology");
            usage()
        }
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        return Network::from_json(&json).unwrap_or_else(|e| {
            eprintln!("invalid topology file: {e}");
            exit(1)
        });
    }
    if let Some(net) = family_network_of(flags) {
        if flags.contains_key("preset") {
            eprintln!("--family conflicts with --preset");
            usage()
        }
        return net;
    }
    let Some(preset) = preset_of(flags) else {
        eprintln!("need --preset, --family or --topology");
        usage()
    };
    let mut cfg = GeneratorConfig::preset(preset);
    if let Some(fill) = flags.get("fill") {
        cfg.capacity_fill = fill.parse().unwrap_or_else(|_| {
            eprintln!("--fill takes a number in [0,1]");
            exit(2)
        });
    }
    if flags.contains_key("long-term") {
        cfg.long_term = true;
    }
    if let Some(seed) = flags.get("seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| {
            eprintln!("--seed takes a u64");
            exit(2)
        });
    }
    cfg.try_generate().unwrap_or_else(|e| {
        eprintln!("invalid generator config: {e}");
        exit(1)
    })
}

/// `--chaos <spec>`: validate and install the process-wide fault plan
/// (see `np_chaos` for the grammar). Must run before any instrumented
/// code; a malformed spec is a usage error.
fn install_chaos(flags: &HashMap<String, String>) {
    let Some(spec) = flags.get("chaos") else {
        return;
    };
    let plan = np_chaos::FaultPlan::parse(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    });
    if !np_chaos::install(plan) {
        eprintln!("warning: a chaos plan is already installed (NP_CHAOS); --chaos ignored");
    }
}

/// Print which fault classes fired, so chaos runs are auditable.
fn finish_chaos() {
    let chaos = np_chaos::global();
    for (name, count) in chaos.summary() {
        eprintln!("chaos: {name} fired {count}x");
    }
}

/// `--lp-backend <dense|sparse|auto>`: simplex basis engine for every LP
/// in the run. Also exported as `NP_LP_BACKEND` so code paths that only
/// see the `Auto` default (baselines, ad-hoc solves) resolve the same
/// choice. Defaults to `auto` (sparse unless `NP_LP_BACKEND=dense`).
fn lp_backend_of(flags: &HashMap<String, String>) -> np_lp::LpBackend {
    let Some(spec) = flags.get("lp-backend") else {
        return np_lp::LpBackend::Auto;
    };
    let Some(backend) = np_lp::LpBackend::parse(spec) else {
        eprintln!("--lp-backend must be dense, sparse or auto");
        exit(2)
    };
    match backend {
        np_lp::LpBackend::Dense => std::env::set_var("NP_LP_BACKEND", "dense"),
        np_lp::LpBackend::Sparse => std::env::set_var("NP_LP_BACKEND", "sparse"),
        np_lp::LpBackend::Auto => {}
    }
    backend
}

/// `--workers <n|auto>`: thread budget for the parallel execution paths
/// (`auto` = all available cores). Defaults to 1 (serial) when absent.
fn workers_of(flags: &HashMap<String, String>) -> usize {
    match flags.get("workers").map(String::as_str) {
        None => 1,
        Some("auto") => np_pool::auto_workers(),
        Some(n) => n.parse::<usize>().map(|n| n.max(1)).unwrap_or_else(|_| {
            eprintln!("--workers takes a positive integer or 'auto'");
            exit(2)
        }),
    }
}

/// `--telemetry <path>`: a JSONL sink at `path`, else the free no-op.
/// `--profile` needs an enabled handle to aggregate spans into, so it
/// forces an in-memory sink when `--telemetry` is absent, and flips the
/// process-global profiling switch that makes the solver layers collect
/// stage times (timing only — plan costs and counters are unchanged).
fn telemetry_of(flags: &HashMap<String, String>) -> Telemetry {
    if flags.contains_key("profile") {
        np_telemetry::set_profiling(true);
    }
    match flags.get("telemetry") {
        Some(path) => Telemetry::jsonl(path).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1)
        }),
        None if flags.contains_key("profile") => Telemetry::memory(),
        None => Telemetry::noop(),
    }
}

/// Flush the sink and print the per-phase breakdown to stderr. Under
/// `--profile`, additionally print the self-time wall breakdown and
/// write the `np-profile-v1` JSON (default `BENCH_profile.json`,
/// overridable with `--profile-out`).
fn finish_telemetry(tel: &Telemetry, flags: &HashMap<String, String>) {
    if !tel.is_enabled() {
        return;
    }
    tel.flush();
    eprint!("{}", tel.render_summary());
    if let Some(path) = flags.get("telemetry") {
        eprintln!("telemetry written to {path}");
    }
    if flags.contains_key("profile") {
        let report = np_telemetry::profile::ProfileReport::from_telemetry(tel, tel.elapsed_us());
        eprint!("{}", report.render_table());
        let out = flags
            .get("profile-out")
            .map(String::as_str)
            .unwrap_or("BENCH_profile.json");
        let body = serde_json::to_string_pretty(&report.to_json()).expect("profile json");
        match std::fs::write(out, format!("{body}\n")) {
            Ok(()) => eprintln!("profile written to {out}"),
            Err(e) => eprintln!("cannot write profile file {out}: {e}"),
        }
    }
}

/// Build the planner configuration from the shared `plan`/`replan`
/// flags (`--quick|--default`, `--alpha`, `--seed`, `--workers`,
/// `--stage-budget`, `--max-retries`, `--no-degrade`, `--lp-backend`).
fn planner_config(
    flags: &HashMap<String, String>,
    lp_backend: np_lp::LpBackend,
) -> NeuroPlanConfig {
    let mut cfg = if flags.contains_key("default") {
        NeuroPlanConfig::default()
    } else {
        NeuroPlanConfig::quick()
    };
    if let Some(alpha) = flags.get("alpha") {
        cfg.relax_factor = alpha.parse().unwrap_or_else(|_| {
            eprintln!("--alpha takes a number >= 1");
            exit(2)
        });
    }
    if let Some(seed) = flags.get("seed") {
        cfg = cfg.with_seed(seed.parse().unwrap_or_else(|_| {
            eprintln!("--seed takes a u64");
            exit(2)
        }));
    }
    // Only an explicit --workers opts into the multi-actor
    // determinism contract; results then match at every count.
    if flags.contains_key("workers") {
        cfg = cfg.with_workers(workers_of(flags));
    }
    if let Some(secs) = flags.get("stage-budget") {
        let secs: f64 = secs.parse().unwrap_or_else(|_| {
            eprintln!("--stage-budget takes seconds");
            exit(2)
        });
        if secs < 0.0 {
            eprintln!("--stage-budget takes seconds >= 0");
            exit(2)
        }
        cfg = cfg.with_stage_budget(secs);
    }
    if let Some(n) = flags.get("max-retries") {
        cfg = cfg.with_max_retries(n.parse().unwrap_or_else(|_| {
            eprintln!("--max-retries takes a small integer");
            exit(2)
        }));
    }
    if flags.contains_key("no-degrade") {
        cfg = cfg.with_degrade(false);
    }
    cfg.with_lp_backend(lp_backend)
}

/// `--events <spec|file>`: an inline churn spec (`seed=7,n=10` or a
/// `;`-separated event list), or the path of a file holding one.
fn churn_spec_of(flags: &HashMap<String, String>) -> ChurnSpec {
    let Some(raw) = flags.get("events") else {
        eprintln!("replan needs --events <spec|file>");
        usage()
    };
    match ChurnSpec::parse(raw) {
        Ok(spec) => spec,
        Err(inline_err) => {
            let Ok(body) = std::fs::read_to_string(raw) else {
                eprintln!(
                    "--events is neither a valid inline spec ({inline_err}) nor a readable file"
                );
                exit(2)
            };
            ChurnSpec::parse(&body).unwrap_or_else(|e| {
                eprintln!("invalid churn spec in {raw}: {e}");
                exit(2)
            })
        }
    }
}

/// Exclusive claim on `--checkpoint-dir`: two processes appending to one
/// checkpoint/journal chain corrupt it for both, so refuse up front with
/// the owner's pid. The guard must stay alive for the whole run.
fn lock_checkpoint_dir(flags: &HashMap<String, String>) -> Option<np_chaos::DirLock> {
    let dir = flags.get("checkpoint-dir")?;
    match np_chaos::DirLock::acquire(std::path::Path::new(dir)) {
        Ok(lock) => Some(lock),
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    }
}

/// A `PlanFailure::Cancelled` after SIGINT/SIGTERM is a graceful stop:
/// telemetry is flushed, the checkpoint chain ends on a complete epoch,
/// and the exit code is the conventional `128 + signo` (130/143).
fn exit_if_signalled(tel: &Telemetry, flags: &HashMap<String, String>) {
    if let Some(signo) = signals::received() {
        finish_telemetry(tel, flags);
        finish_chaos();
        eprintln!(
            "interrupted by signal {signo}; telemetry flushed, checkpoint complete — resume with --resume"
        );
        exit(signals::exit_code(signo));
    }
}

fn write_or_print(flags: &HashMap<String, String>, body: &str) {
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            println!("wrote {path}");
        }
        None => println!("{body}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    install_chaos(&flags);
    let lp_backend = lp_backend_of(&flags);
    match cmd.as_str() {
        "generate" => {
            let net = load_network(&flags);
            eprintln!(
                "generated: {} sites, {} fibers, {} links, {} flows, {} failures",
                net.sites().len(),
                net.fibers().len(),
                net.links().len(),
                net.flows().len(),
                net.failures().len()
            );
            write_or_print(&flags, &net.to_json());
        }
        "plan" => {
            let net = load_network(&flags);
            let cfg = planner_config(&flags, lp_backend);
            let tel = telemetry_of(&flags);
            let _lock = lock_checkpoint_dir(&flags);
            let mut planner =
                NeuroPlan::with_telemetry(cfg, tel.clone()).with_cancel(signals::install());
            if let Some(dir) = flags.get("checkpoint-dir") {
                planner = planner.with_checkpoint(dir, flags.contains_key("resume"));
            } else if flags.contains_key("resume") {
                eprintln!("--resume needs --checkpoint-dir");
                exit(2)
            }
            let result = planner.try_plan(&net).unwrap_or_else(|e| {
                exit_if_signalled(&tel, &flags);
                finish_telemetry(&tel, &flags);
                finish_chaos();
                eprintln!("plan failed: {e}");
                exit(1)
            });
            if let Err(e) = validate_plan(&net, &result.final_units) {
                eprintln!("plan failed validation: {e}");
                exit(1)
            }
            finish_telemetry(&tel, &flags);
            finish_chaos();
            eprintln!(
                "first-stage {:.1} -> final {:.1} ({} epochs, {} B&B nodes, {} cuts)",
                result.first_stage_cost,
                result.final_cost,
                result.train_report.epochs_run(),
                result.master.nodes,
                result.master.cuts_added
            );
            eprintln!(
                "quality {} (rung {}), {} retries, {} degrades",
                result.quality,
                result.quality.rung(),
                result.supervision.total_retries(),
                result.supervision.degrades
            );
            let body = serde_json::json!({
                "units": result.final_units,
                "cost": result.final_cost,
                // Bit-exact cost for cross-process comparisons (the
                // daemon's results carry the same field).
                "cost_hex": np_chaos::checkpoint::f64_to_hex(result.final_cost),
                "first_stage_cost": result.first_stage_cost,
                "quality": result.quality.name(),
            });
            write_or_print(&flags, &serde_json::to_string_pretty(&body).expect("json"));
        }
        "replan" => {
            let net = load_network(&flags);
            let spec = churn_spec_of(&flags);
            let events = spec.resolve(&net);
            let cfg = planner_config(&flags, lp_backend);
            let mut rcfg = ReplanConfig::default();
            if let Some(gap) = flags.get("gap") {
                rcfg.gap_tol = gap.parse().unwrap_or_else(|_| {
                    eprintln!("--gap takes a number >= 0");
                    exit(2)
                });
            }
            if let Some(alpha) = flags.get("prune-alpha") {
                rcfg.prune_alpha = Some(alpha.parse().unwrap_or_else(|_| {
                    eprintln!("--prune-alpha takes a number >= 1");
                    exit(2)
                }));
            }
            if let Some(seed) = flags.get("flap-seed") {
                rcfg.flap_seed = seed.parse().unwrap_or_else(|_| {
                    eprintln!("--flap-seed takes a u64");
                    exit(2)
                });
            }
            let tel = telemetry_of(&flags);
            let _lock = lock_checkpoint_dir(&flags);
            let mut planner =
                NeuroPlan::with_telemetry(cfg, tel.clone()).with_cancel(signals::install());
            if let Some(dir) = flags.get("checkpoint-dir") {
                planner = planner.with_checkpoint(dir, flags.contains_key("resume"));
            } else if flags.contains_key("resume") {
                eprintln!("--resume needs --checkpoint-dir");
                exit(2)
            }
            let report = planner.replan(&net, &events, &rcfg).unwrap_or_else(|e| {
                exit_if_signalled(&tel, &flags);
                finish_telemetry(&tel, &flags);
                finish_chaos();
                eprintln!("replan failed: {e}");
                exit(1)
            });
            if let Err(e) = validate_plan(&report.net, &report.final_units) {
                eprintln!("final plan failed validation: {e}");
                exit(1)
            }
            finish_telemetry(&tel, &flags);
            finish_chaos();
            for ev in &report.events {
                match &ev.skipped {
                    Some(reason) => eprintln!(
                        "event {:>3} {:<14} SKIPPED ({reason})",
                        ev.index, ev.class
                    ),
                    None => eprintln!(
                        "event {:>3} {:<14} cost {:>10.1}  churn {:>4}  cuts kept {}/dropped {}{}{}",
                        ev.index,
                        ev.class,
                        ev.cost,
                        ev.churn,
                        ev.certs_retained,
                        ev.certs_dropped,
                        if ev.flapped { "  [flap recovered]" } else { "" },
                        if ev.resumed { "  [resumed]" } else { "" },
                    ),
                }
            }
            eprintln!(
                "initial {:.1} -> final {:.1} over {} events ({} applied, {} skipped, {} resumed)",
                report.initial_cost,
                report.final_cost,
                report.events.len(),
                report.applied(),
                report.skipped(),
                report.resumed
            );
            let events_json: Vec<serde_json::Value> = report
                .events
                .iter()
                .map(|ev| {
                    serde_json::json!({
                        "index": ev.index,
                        "class": ev.class,
                        "event": ev.event,
                        "skipped": ev.skipped,
                        "cost": ev.cost,
                        "quality": ev.quality.name(),
                        "churn": ev.churn,
                        "certs_retained": ev.certs_retained,
                        "certs_dropped": ev.certs_dropped,
                        "flapped": ev.flapped,
                        "resumed": ev.resumed,
                        "millis": ev.millis,
                    })
                })
                .collect();
            let body = serde_json::json!({
                "units": report.final_units,
                "cost": report.final_cost,
                "initial_cost": report.initial_cost,
                "events": events_json,
            });
            write_or_print(&flags, &serde_json::to_string_pretty(&body).expect("json"));
        }
        "evaluate" => {
            let net = load_network(&flags);
            let units: Vec<u32> = match flags.get("plan") {
                Some(path) => {
                    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("cannot read {path}: {e}");
                        exit(1)
                    });
                    let v: serde_json::Value =
                        serde_json::from_str(&body).expect("plan file is JSON");
                    serde_json::from_value(v["units"].clone()).expect("plan file has a units array")
                }
                None => net.link_ids().map(|l| net.link(l).capacity_units).collect(),
            };
            let caps: Vec<f64> = units
                .iter()
                .map(|&u| f64::from(u) * net.unit_gbps)
                .collect();
            let tel = telemetry_of(&flags);
            let eval_cfg = EvalConfig {
                parallel_workers: workers_of(&flags),
                ..EvalConfig::default()
            };
            let mut evaluator = PlanEvaluator::with_telemetry(&net, eval_cfg, tel.clone());
            let outcome = evaluator.check(&caps);
            finish_telemetry(&tel, &flags);
            finish_chaos();
            if outcome.feasible {
                println!("feasible: every flow survives every failure scenario");
            } else {
                let idx = outcome.first_violated.expect("infeasible has an index");
                let name = match idx {
                    0 => "no-failure state".to_string(),
                    k => net.failure(np_topology::FailureId::new(k - 1)).name.clone(),
                };
                println!(
                    "INFEASIBLE at scenario {idx} ({name}){}",
                    if outcome.structural {
                        " — structurally unfixable"
                    } else {
                        ""
                    }
                );
                exit(1);
            }
        }
        "baseline" => {
            let net = load_network(&flags);
            let time = flags
                .get("time")
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("--time takes seconds");
                        exit(2)
                    })
                })
                .unwrap_or(120.0);
            let budget = BaselineBudget {
                node_limit: 50_000,
                time_limit_secs: time,
            };
            let workers = workers_of(&flags);
            let eval_cfg = EvalConfig {
                parallel_workers: workers,
                ..EvalConfig::default()
            };
            match flags.get("method").map(String::as_str) {
                Some("ilp") => {
                    let out = solve_ilp(&net, eval_cfg, budget);
                    println!(
                        "ILP: cost {:.1}, proven {}, {:.1}s, {} nodes, {} cuts",
                        out.cost(),
                        out.solved_to_optimality,
                        out.elapsed_secs,
                        out.master.nodes,
                        out.master.cuts_added
                    );
                }
                Some("ilp-heur") => {
                    let out = solve_ilp_heur(&net, eval_cfg, budget, 4);
                    println!("ILP-heur: cost {:.1}, {:.1}s", out.cost(), out.elapsed_secs);
                }
                Some("decompose") => {
                    let t0 = std::time::Instant::now();
                    let tel = telemetry_of(&flags);
                    let solved = neuroplan::solve_decomposed_telemetry(
                        &net,
                        eval_cfg,
                        time / 4.0,
                        3,
                        workers,
                        &tel,
                    );
                    finish_telemetry(&tel, &flags);
                    match solved {
                        Ok(out) => println!(
                            "decomposed: cost {:.1} over {} regions ({} inter-region links), {:.1}s",
                            out.cost,
                            out.regions,
                            out.inter_region_links,
                            t0.elapsed().as_secs_f64()
                        ),
                        Err(e) => {
                            eprintln!("decomposition failed: {e}");
                            exit(1);
                        }
                    }
                }
                _ => {
                    eprintln!("--method must be ilp, ilp-heur or decompose");
                    usage()
                }
            }
            finish_chaos();
        }
        "serve" => {
            let tel = telemetry_of(&flags);
            let state_dir = flags
                .get("state-dir")
                .cloned()
                .unwrap_or_else(|| "np-serve-state".to_string());
            let parse_cap = |key: &str, default: usize| -> usize {
                match flags.get(key) {
                    None => default,
                    Some(v) => v.parse().unwrap_or_else(|_| {
                        eprintln!("--{key} takes a positive integer");
                        exit(2)
                    }),
                }
            };
            let cfg = np_serve::ServerConfig {
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:0".to_string()),
                workers: workers_of(&flags),
                queue_capacity: parse_cap("queue-cap", 16),
                cache_capacity: parse_cap("cache-cap", 8),
                state_dir: state_dir.clone().into(),
                read_timeout: std::time::Duration::from_secs(30),
            };
            let service = NeuroPlanService::new(&state_dir, tel.clone());
            // SIGINT/SIGTERM fire the daemon-wide shutdown token: running
            // solves stop at their next stage boundary *without* terminal
            // journal records, so the next start resumes them.
            let shutdown = signals::install();
            let server = np_serve::Server::start(cfg, service, tel.clone(), shutdown)
                .unwrap_or_else(|e| {
                    eprintln!("cannot start daemon: {e}");
                    exit(1)
                });
            // Scripts scrape this line for the ephemeral port.
            println!("listening on {}", server.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait();
            finish_telemetry(&tel, &flags);
            finish_chaos();
            if let Some(signo) = signals::received() {
                eprintln!("daemon stopped by signal {signo}; journal is resumable");
                exit(signals::exit_code(signo));
            }
        }
        "request" => {
            let Some(addr) = flags.get("addr") else {
                eprintln!("request needs --addr <host:port>");
                usage()
            };
            let action = flags.get("do").map(String::as_str).unwrap_or("run");
            let mut client = np_serve::Client::connect(addr).unwrap_or_else(|e| {
                eprintln!("cannot connect to {addr}: {e}");
                exit(1)
            });
            let id_flag = || -> u64 {
                flags
                    .get("id")
                    .unwrap_or_else(|| {
                        eprintln!("--do {action} needs --id <n>");
                        usage()
                    })
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--id takes an integer");
                        exit(2)
                    })
            };
            let timeout = std::time::Duration::from_secs_f64(
                flags
                    .get("timeout")
                    .map(|t| {
                        t.parse().unwrap_or_else(|_| {
                            eprintln!("--timeout takes seconds");
                            exit(2)
                        })
                    })
                    .unwrap_or(600.0),
            );
            let reply = match action {
                "submit" => client.submit(&request_spec_of(&flags)),
                "run" => {
                    let reply = client.submit(&request_spec_of(&flags)).unwrap_or_else(|e| {
                        eprintln!("submit failed: {e}");
                        exit(1)
                    });
                    match np_serve::client::submit_id(&reply) {
                        Some(id) => {
                            eprintln!("request {id} admitted; waiting...");
                            client.wait(id, timeout)
                        }
                        None => Ok(reply), // shed/rejected: print the envelope
                    }
                }
                "status" => client.status(id_flag()),
                "result" => client.result(id_flag()),
                "cancel" => client.cancel(id_flag()),
                "stats" => client.stats(),
                "shutdown" => client.shutdown(),
                other => {
                    eprintln!("unknown --do {other}");
                    usage()
                }
            };
            let reply = reply.unwrap_or_else(|e| {
                eprintln!("request failed: {e}");
                exit(1)
            });
            let ok = reply.get("ok").and_then(|v| v.as_bool()) == Some(true);
            let state = reply.get("state").and_then(|v| v.as_str()).unwrap_or("");
            write_or_print(&flags, &serde_json::to_string_pretty(&reply).expect("json"));
            if !ok || state == "failed" {
                exit(1)
            }
        }
        _ => usage(),
    }
}

/// Package the plan-request flags into the daemon's JSON spec (the
/// service-side mirror of `load_network` + `planner_config`).
fn request_spec_of(flags: &HashMap<String, String>) -> serde_json::Value {
    let mut fields: Vec<(String, serde_json::Value)> = Vec::new();
    let put_str = |fields: &mut Vec<(String, serde_json::Value)>, key: &str, spec_key: &str| {
        if let Some(v) = flags.get(key) {
            fields.push((spec_key.to_string(), serde_json::Value::Str(v.clone())));
        }
    };
    put_str(&mut fields, "preset", "preset");
    put_str(&mut fields, "family", "family");
    put_str(&mut fields, "size-tier", "size_tier");
    put_str(&mut fields, "failure-model", "failure_model");
    put_str(&mut fields, "events", "events");
    for (key, spec_key) in [
        ("fill", "fill"),
        ("alpha", "alpha"),
        ("stage-budget", "stage_budget"),
    ] {
        if let Some(v) = flags.get(key) {
            let num: f64 = v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} takes a number");
                exit(2)
            });
            fields.push((spec_key.to_string(), serde_json::Value::Num(num)));
        }
    }
    if let Some(v) = flags.get("seed") {
        let num: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("--seed takes a u64");
            exit(2)
        });
        fields.push(("seed".to_string(), serde_json::Value::Num(num)));
    }
    if flags.contains_key("default") {
        fields.push(("default".to_string(), serde_json::Value::Bool(true)));
    }
    if flags.contains_key("long-term") {
        fields.push(("long_term".to_string(), serde_json::Value::Bool(true)));
    }
    serde_json::Value::Object(fields)
}
