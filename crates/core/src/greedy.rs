//! Certificate-guided greedy augmentation.
//!
//! Repeatedly ask the evaluator for a violated metric cut and buy the
//! cheapest capacity that makes progress against it. The result is a
//! feasible (far from optimal) plan used for (a) the RL reward
//! normalizer, (b) a warm-start cutoff for the ILP stage, and (c) the
//! fallback initial plan if RL training is cut short before finding a
//! feasible trajectory.

use np_eval::{EvalConfig, PlanEvaluator, Separation};
use np_topology::{LinkId, Network, TopologyError};

/// Failure modes of the augmentation loop.
#[derive(Clone, Debug, PartialEq)]
pub enum GreedyError {
    /// A scenario is structurally infeasible: no capacities can fix it.
    StructurallyInfeasible(usize),
    /// Spectrum ran out before the cuts were satisfied.
    SpectrumExhausted,
    /// Iteration safety cap hit.
    IterationLimit,
}

impl std::fmt::Display for GreedyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GreedyError::StructurallyInfeasible(s) => {
                write!(f, "scenario {s} is structurally infeasible")
            }
            GreedyError::SpectrumExhausted => write!(f, "spectrum exhausted before feasibility"),
            GreedyError::IterationLimit => write!(f, "greedy augmentation iteration cap hit"),
        }
    }
}

impl std::error::Error for GreedyError {}

/// Augment `net`'s capacities in place until the plan is feasible.
/// Returns the resulting plan cost (Eq. 1, relative to the baseline).
pub fn greedy_augment(net: &mut Network, eval_cfg: EvalConfig) -> Result<f64, GreedyError> {
    let mut evaluator = PlanEvaluator::new(net, eval_cfg);
    let max_iters = 200_000usize;
    for _ in 0..max_iters {
        let caps: Vec<f64> = net.link_ids().map(|l| net.capacity_gbps(l)).collect();
        match evaluator.separate(&caps, 1) {
            Separation::Feasible => return Ok(net.plan_cost()),
            Separation::StructurallyInfeasible(s) => {
                return Err(GreedyError::StructurallyInfeasible(s))
            }
            Separation::Cuts(cuts) => {
                let cut = &cuts[0];
                // Pick the link with the best cut-progress per cost that
                // still has spectrum room.
                let mut best: Option<(f64, LinkId)> = None;
                for &(link, w) in &cut.coeff {
                    if w <= 0.0 || !net.can_add_units(link, 1) {
                        continue;
                    }
                    let marginal = net.marginal_cost(link, 1).max(1e-9);
                    let score = w * net.unit_gbps / marginal;
                    if best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, link));
                    }
                }
                let Some((_, link)) = best else {
                    return Err(GreedyError::SpectrumExhausted);
                };
                // Buy enough units on this link to close the cut's deficit
                // (capped by spectrum), so progress per iteration is large.
                let w = cut
                    .coeff
                    .iter()
                    .find(|&&(l, _)| l == link)
                    .map(|&(_, w)| w)
                    .expect("chosen link is in the cut");
                let deficit =
                    -(cut.slack(|l| f64::from(net.link(l).capacity_units) * net.unit_gbps));
                let wanted = ((deficit / (w * net.unit_gbps)).ceil() as u32).max(1);
                let room = net.spectrum_room_units(link);
                let units = wanted.min(room).max(1);
                net.add_units(link, units).map_err(|e| match e {
                    TopologyError::SpectrumExceeded { .. } => GreedyError::SpectrumExhausted,
                    other => panic!("unexpected augmentation failure: {other}"),
                })?;
            }
        }
    }
    Err(GreedyError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_eval::PlanEvaluator;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn augments_dark_network_to_feasibility() {
        let mut net = GeneratorConfig::a_variant(0.0).generate();
        let cost = greedy_augment(&mut net, EvalConfig::default()).expect("feasible");
        assert!(cost > 0.0);
        // Independent verification with a fresh evaluator.
        let mut check = PlanEvaluator::new(&net, EvalConfig::default());
        assert!(check.check_network(&net).feasible);
    }

    #[test]
    fn already_feasible_plans_cost_nothing_extra() {
        let mut net = GeneratorConfig::a_variant(0.0).generate();
        greedy_augment(&mut net, EvalConfig::default()).unwrap();
        let snap = net.snapshot();
        // Re-running on the (already feasible) plan adds nothing.
        let cost2 = greedy_augment(&mut net, EvalConfig::default()).unwrap();
        assert_eq!(net.snapshot(), snap);
        assert!((cost2 - net.plan_cost()).abs() < 1e-12);
    }

    #[test]
    fn works_across_presets() {
        for preset in [TopologyPreset::A, TopologyPreset::B] {
            let mut net = GeneratorConfig::preset(preset).generate();
            let cost = greedy_augment(&mut net, EvalConfig::default())
                .unwrap_or_else(|e| panic!("{:?} failed: {e}", preset));
            assert!(cost >= 0.0);
        }
    }
}
