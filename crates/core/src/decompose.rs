//! Topology decomposition (§3.2's first production heuristic):
//! "decompose the topology into several smaller sub-topologies, and each
//! sub-topology is solved with an ILP. The decomposition is usually done
//! by segmenting the topology into geographical regions … sizing
//! inter-regional links … the segmentation and stitching are done
//! manually."
//!
//! We automate the manual parts deterministically: regions are contiguous
//! angular sectors around the site centroid (a stand-in for the
//! operational blocks), each region's intra-region planning problem is
//! solved by the Benders master, and the stitch — inter-regional capacity
//! plus anything the regional solves missed — is finished by
//! certificate-guided greedy augmentation and 1-opt polish.

use crate::greedy::greedy_augment;
use crate::master::{
    apply_units, plan_cost_of, polish_units, solve_master_telemetry, MasterConfig,
};
use np_eval::{EvalConfig, PlanEvaluator};
use np_lp::LpBackend;
use np_telemetry::{sys, Telemetry};
use np_topology::{FailureKind, LinkId, Network, SiteId};

/// Result of a decomposed solve.
#[derive(Clone, Debug)]
pub struct DecomposedOutcome {
    /// Final (stitched, polished) plan in total units per link.
    pub units: Vec<u32>,
    /// Eq. 1 cost of the plan.
    pub cost: f64,
    /// Number of regions actually used.
    pub regions: usize,
    /// Links treated as inter-regional (sized by the stitch phase).
    pub inter_region_links: usize,
}

/// Assign each site to one of `k` contiguous angular sectors.
pub fn angular_regions(net: &Network, k: usize) -> Vec<usize> {
    let n = net.sites().len();
    if n == 0 {
        // No sites means no centroid: dividing by `n as f64` below would
        // produce NaN coordinates (and `clamp(1, 0)` panics).
        return vec![];
    }
    let k = k.clamp(1, n);
    let cx = net.sites().iter().map(|s| s.pos.0).sum::<f64>() / n as f64;
    let cy = net.sites().iter().map(|s| s.pos.1).sum::<f64>() / n as f64;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ta = (net.sites()[a].pos.1 - cy).atan2(net.sites()[a].pos.0 - cx);
        let tb = (net.sites()[b].pos.1 - cy).atan2(net.sites()[b].pos.0 - cx);
        // `total_cmp`, not `partial_cmp().expect(..)`: degenerate inputs
        // (co-located sites from the grid/Clos generators collapsing the
        // centroid offset to ±0, or non-finite coordinates) must fall
        // into *some* sector, never panic mid-decomposition. Ties break
        // by site index so the partition stays deterministic.
        ta.total_cmp(&tb).then(a.cmp(&b))
    });
    let mut region = vec![0usize; n];
    for (rank, &site) in order.iter().enumerate() {
        region[site] = rank * k / n;
    }
    region
}

/// Solve by regional decomposition. Returns `Err` only if even the
/// stitch phase cannot reach feasibility (structurally impossible).
/// `workers` bounds the number of regions solved concurrently (1 =
/// serial); the plan is identical at every worker count as long as the
/// per-region wall-clock budget does not bind.
pub fn solve_decomposed(
    net: &Network,
    eval_cfg: EvalConfig,
    per_region_time_secs: f64,
    num_regions: usize,
    workers: usize,
) -> Result<DecomposedOutcome, crate::greedy::GreedyError> {
    solve_decomposed_telemetry(
        net,
        eval_cfg,
        per_region_time_secs,
        num_regions,
        workers,
        &Telemetry::noop(),
    )
}

/// [`solve_decomposed`] reporting through `tel`: a `decompose` span plus
/// region counts under `pipeline`, with each regional master reporting
/// its own `master`/`lp`/`eval` counters. When regions solve in
/// parallel, each region records into a private buffer that is replayed
/// into `tel` in region order after the join — the event stream is the
/// same at every worker count.
pub fn solve_decomposed_telemetry(
    net: &Network,
    eval_cfg: EvalConfig,
    per_region_time_secs: f64,
    num_regions: usize,
    workers: usize,
    tel: &Telemetry,
) -> Result<DecomposedOutcome, crate::greedy::GreedyError> {
    let _decompose_span = tel.span(sys::PIPELINE, "decompose");
    let workers = workers.max(1);
    let region = angular_regions(net, num_regions);
    let regions = *region.iter().max().unwrap_or(&0) + 1;
    let mut units: Vec<u32> = net.link_ids().map(|l| net.base_units(l)).collect();
    let mut inter_region_links = 0usize;

    // Regions are independent subproblems: fix the task list (and thus
    // the merge order) up front, solve on the pool, merge in region
    // order. Each regional evaluator runs serially — the region level
    // owns the thread budget here.
    let subproblems: Vec<SubInstance> = (0..regions)
        .filter_map(|r| extract_region(net, &region, r))
        .filter(|sub| !sub.net.flows().is_empty())
        .collect();
    let buffered = workers > 1 && tel.is_enabled();
    let region_eval_cfg = EvalConfig {
        parallel_workers: 1,
        ..eval_cfg
    };
    let tasks: Vec<_> = subproblems
        .into_iter()
        .map(|sub| {
            let region_tel = if buffered {
                Telemetry::memory()
            } else {
                tel.clone()
            };
            move || {
                let mut evaluator =
                    PlanEvaluator::with_telemetry(&sub.net, region_eval_cfg, region_tel.clone());
                let cfg = MasterConfig {
                    upper_bounds: MasterConfig::spectrum_bounds(&sub.net),
                    cutoff: None,
                    node_limit: 5000,
                    time_limit_secs: per_region_time_secs,
                    max_cuts_per_round: 8,
                    seed_cuts: vec![],
                    granularity: 1,
                    gap_tol: MasterConfig::DEFAULT_GAP,
                    warm_units: None,
                    polish_final: true,
                    lp_backend: LpBackend::Auto,
                };
                let out = solve_master_telemetry(&sub.net, &mut evaluator, &cfg, &region_tel);
                region_tel.incr(sys::PIPELINE, "regions_solved", 1);
                (sub.link_map, out, region_tel)
            }
        })
        .collect();
    for (link_map, out, region_tel) in np_pool::run_tasks(workers, tasks) {
        if buffered {
            region_tel.replay_into(tel);
        }
        if out.has_plan() {
            for (sub_idx, &global) in link_map.iter().enumerate() {
                units[global.index()] = units[global.index()].max(out.units[sub_idx]);
            }
        }
    }
    // Count the links no region owned (the ones "sized manually").
    for l in net.link_ids() {
        let link = net.link(l);
        if region[link.src.index()] != region[link.dst.index()] {
            inter_region_links += 1;
        }
    }
    // Stitch: apply regional capacities, then let the certificate-guided
    // greedy finish whatever the regional views could not see (cross
    // demands, failures spanning regions).
    let mut stitched = net.clone();
    apply_units(&mut stitched, &units);
    greedy_augment(&mut stitched, eval_cfg)?;
    let mut final_units: Vec<u32> = stitched
        .link_ids()
        .map(|l| stitched.link(l).capacity_units)
        .collect();
    let mut evaluator = PlanEvaluator::with_telemetry(net, eval_cfg, tel.clone());
    polish_units(net, &mut evaluator, &mut final_units);
    let cost = plan_cost_of(net, &final_units);
    tel.incr(
        sys::PIPELINE,
        "inter_region_links",
        inter_region_links as u64,
    );
    Ok(DecomposedOutcome {
        units: final_units,
        cost,
        regions,
        inter_region_links,
    })
}

struct SubInstance {
    net: Network,
    /// Global link id of each sub-instance link, indexed by sub link id.
    link_map: Vec<LinkId>,
}

/// Extract the intra-region planning problem of region `r`: sites of the
/// region, fibers and links entirely inside it, flows between its sites,
/// and the failure scenarios that still reference something inside.
fn extract_region(net: &Network, region: &[usize], r: usize) -> Option<SubInstance> {
    let site_ids: Vec<usize> = (0..net.sites().len()).filter(|&s| region[s] == r).collect();
    if site_ids.len() < 2 {
        return None;
    }
    let mut site_new = vec![usize::MAX; net.sites().len()];
    for (new, &old) in site_ids.iter().enumerate() {
        site_new[old] = new;
    }
    let sites = site_ids.iter().map(|&s| net.sites()[s].clone()).collect();
    // Fibers fully inside.
    let mut fiber_new = vec![usize::MAX; net.fibers().len()];
    let mut fibers = Vec::new();
    for (i, fiber) in net.fibers().iter().enumerate() {
        let (a, b) = fiber.endpoints;
        if site_new[a.index()] != usize::MAX && site_new[b.index()] != usize::MAX {
            fiber_new[i] = fibers.len();
            let mut f = fiber.clone();
            f.endpoints = (
                SiteId::new(site_new[a.index()].min(site_new[b.index()])),
                SiteId::new(site_new[a.index()].max(site_new[b.index()])),
            );
            fibers.push(f);
        }
    }
    // Links whose endpoints and entire fiber path are inside.
    let mut links = Vec::new();
    let mut link_map = Vec::new();
    for l in net.link_ids() {
        let link = net.link(l);
        let inside = site_new[link.src.index()] != usize::MAX
            && site_new[link.dst.index()] != usize::MAX
            && link
                .fiber_path
                .iter()
                .all(|&(f, _)| fiber_new[f.index()] != usize::MAX);
        if !inside {
            continue;
        }
        let mut nl = link.clone();
        nl.src = SiteId::new(site_new[link.src.index()]);
        nl.dst = SiteId::new(site_new[link.dst.index()]);
        nl.fiber_path = link
            .fiber_path
            .iter()
            .map(|&(f, e)| (np_topology::FiberId::new(fiber_new[f.index()]), e))
            .collect();
        links.push(nl);
        link_map.push(l);
    }
    if links.is_empty() {
        return None;
    }
    // Intra-region flows only (cross flows belong to the stitch phase).
    let flows: Vec<_> = net
        .flows()
        .iter()
        .filter(|f| site_new[f.src.index()] != usize::MAX && site_new[f.dst.index()] != usize::MAX)
        .map(|f| {
            let mut nf = f.clone();
            nf.src = SiteId::new(site_new[f.src.index()]);
            nf.dst = SiteId::new(site_new[f.dst.index()]);
            nf
        })
        .collect();
    // Failures that still reference region entities.
    let mut failures = Vec::new();
    for failure in net.failures() {
        let kind = match &failure.kind {
            FailureKind::FiberCut(f) if fiber_new[f.index()] != usize::MAX => Some(
                FailureKind::FiberCut(np_topology::FiberId::new(fiber_new[f.index()])),
            ),
            FailureKind::SiteDown(s) if site_new[s.index()] != usize::MAX => {
                Some(FailureKind::SiteDown(SiteId::new(site_new[s.index()])))
            }
            FailureKind::Srlg(fs) => {
                let inside: Vec<_> = fs
                    .iter()
                    .filter(|f| fiber_new[f.index()] != usize::MAX)
                    .map(|f| np_topology::FiberId::new(fiber_new[f.index()]))
                    .collect();
                (!inside.is_empty()).then_some(FailureKind::Srlg(inside))
            }
            _ => None,
        };
        if let Some(kind) = kind {
            failures.push(np_topology::Failure {
                name: failure.name.clone(),
                kind,
            });
        }
    }
    let net = Network::new(
        sites,
        fibers,
        links,
        flows,
        failures,
        net.policy.clone(),
        net.cost_model.clone(),
        net.unit_gbps,
    )
    .ok()?;
    Some(SubInstance { net, link_map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::solve_master;
    use crate::pipeline::validate_plan;
    use np_topology::{generator::GeneratorConfig, TopologyPreset};

    #[test]
    fn angular_regions_partition_all_sites() {
        let net = GeneratorConfig::preset(TopologyPreset::B).generate();
        let region = angular_regions(&net, 3);
        assert_eq!(region.len(), net.sites().len());
        assert!(region.iter().all(|&r| r < 3));
        // Every region non-empty for a 12-site topology.
        for r in 0..3 {
            assert!(region.contains(&r), "region {r} empty");
        }
    }

    #[test]
    fn one_region_is_the_identity_partition() {
        let net = GeneratorConfig::preset(TopologyPreset::A).generate();
        let region = angular_regions(&net, 1);
        assert!(region.iter().all(|&r| r == 0));
    }

    #[test]
    fn angular_regions_of_an_empty_network_are_empty() {
        let net = Network::new(
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            Default::default(),
            Default::default(),
            100.0,
        )
        .expect("an instance with no sites is degenerate but valid");
        assert!(angular_regions(&net, 3).is_empty());
        assert!(angular_regions(&net, 0).is_empty());
    }

    #[test]
    fn degenerate_coordinates_never_panic_the_partition() {
        // Co-located sites (a collapsed metro, or generators that stack
        // nodes) put every site at the centroid: all angles are atan2 of
        // signed zeros. The sort must stay total and deterministic.
        let stacked = positions_net(&[(5.0, 5.0); 6]);
        let region = angular_regions(&stacked, 3);
        assert_eq!(region.len(), 6);
        assert!(region.iter().all(|&r| r < 3));
        for r in 0..3 {
            assert!(region.contains(&r), "region {r} empty for stacked sites");
        }
        assert_eq!(region, angular_regions(&stacked, 3));

        // Non-finite coordinates (upstream data bugs) used to panic in
        // `partial_cmp(..).expect("finite angles")`; they must now land
        // in some sector instead of killing the decomposition.
        let poisoned = positions_net(&[
            (0.0, 0.0),
            (f64::NAN, 1.0),
            (1.0, f64::INFINITY),
            (2.0, 1.0),
        ]);
        let region = angular_regions(&poisoned, 2);
        assert_eq!(region.len(), 4);
        assert!(region.iter().all(|&r| r < 2));
        assert_eq!(region, angular_regions(&poisoned, 2));
    }

    #[test]
    fn worker_count_never_changes_the_decomposed_plan() {
        // The per-region budget (10 s for millisecond-scale regions) never
        // binds here, so the plan and the merged telemetry stream must be
        // identical at every worker count.
        let net = GeneratorConfig::a_variant(0.0).generate();
        let solve = |workers: usize| {
            let tel = Telemetry::memory();
            let out =
                solve_decomposed_telemetry(&net, EvalConfig::default(), 10.0, 2, workers, &tel)
                    .expect("decomposition must stitch to feasibility");
            let span_counts: Vec<_> = tel
                .spans()
                .into_iter()
                .map(|(s, n, count, _total_us)| (s, n, count))
                .collect();
            (out, tel.counters(), span_counts)
        };
        let (base, base_counters, base_spans) = solve(1);
        for workers in [2, 4] {
            let (out, counters, spans) = solve(workers);
            assert_eq!(out.units, base.units, "workers={workers}");
            assert_eq!(out.cost, base.cost, "workers={workers}");
            assert_eq!(out.regions, base.regions, "workers={workers}");
            assert_eq!(counters, base_counters, "workers={workers}");
            assert_eq!(spans, base_spans, "workers={workers}");
        }
    }

    #[test]
    fn decomposed_solve_produces_a_valid_plan() {
        let net = GeneratorConfig::a_variant(0.0).generate();
        let out = solve_decomposed(&net, EvalConfig::default(), 10.0, 2, 1)
            .expect("decomposition must stitch to feasibility");
        validate_plan(&net, &out.units).expect("decomposed plan validates");
        assert!(out.cost > 0.0);
        assert_eq!(out.regions, 2);
    }

    #[test]
    fn decomposition_is_no_better_than_the_global_view() {
        // The heuristic's whole point: regional myopia costs something
        // (or at best ties the global solve).
        let net = GeneratorConfig::a_variant(0.0).generate();
        let decomposed = solve_decomposed(&net, EvalConfig::default(), 10.0, 2, 1).unwrap();
        let mut evaluator = PlanEvaluator::new(&net, EvalConfig::default());
        let global = solve_master(
            &net,
            &mut evaluator,
            &MasterConfig {
                upper_bounds: MasterConfig::spectrum_bounds(&net),
                cutoff: None,
                node_limit: 20_000,
                time_limit_secs: 60.0,
                max_cuts_per_round: 8,
                seed_cuts: vec![],
                granularity: 1,
                gap_tol: MasterConfig::DEFAULT_GAP,
                warm_units: None,
                polish_final: true,
                lp_backend: LpBackend::Auto,
            },
        );
        assert!(global.has_plan());
        assert!(
            decomposed.cost >= global.cost - 1e-6,
            "regional decomposition ({}) cannot beat the global optimum ({})",
            decomposed.cost,
            global.cost
        );
    }

    /// A minimal valid planning instance whose only interesting content
    /// is the site positions: a fiber/link ring, no flows, no failures.
    fn positions_net(positions: &[(f64, f64)]) -> Network {
        use np_topology::{Fiber, FiberId, IpLink, Site};
        let n = positions.len();
        assert!(n >= 3, "ring construction needs >= 3 sites");
        let sites = positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| Site {
                name: format!("s{i}"),
                pos,
                is_datacenter: false,
            })
            .collect();
        let fibers = (0..n)
            .map(|i| {
                let j = (i + 1) % n;
                Fiber {
                    endpoints: (SiteId::new(i.min(j)), SiteId::new(i.max(j))),
                    length_km: 1.0,
                    spectrum_ghz: 4800.0,
                    build_cost: 1.0,
                }
            })
            .collect();
        let links = (0..n)
            .map(|i| {
                let j = (i + 1) % n;
                IpLink {
                    src: SiteId::new(i.min(j)),
                    dst: SiteId::new(i.max(j)),
                    fiber_path: vec![(FiberId::new(i), 1.0)],
                    capacity_units: 0,
                    min_units: 0,
                    length_km: 1.0,
                }
            })
            .collect();
        Network::new(
            sites,
            fibers,
            links,
            vec![],
            vec![],
            Default::default(),
            Default::default(),
            100.0,
        )
        .expect("ring instance is valid")
    }

    /// Positions with an exact centroid at the origin: every sampled
    /// point is paired with its reflection.
    fn symmetric_positions(polar: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(polar.len() * 2);
        for &(theta, r) in polar {
            let p = (r * theta.cos(), r * theta.sin());
            out.push(p);
            out.push((-p.0, -p.1));
        }
        out
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn regions_are_in_range_and_cover_0_to_k(
                polar in proptest::collection::vec((0.0f64..std::f64::consts::TAU, 0.5f64..10.0), 2..8),
                k in 1usize..9,
            ) {
                let net = positions_net(&symmetric_positions(&polar));
                let n = net.sites().len();
                let region = angular_regions(&net, k);
                let k_eff = k.clamp(1, n);
                prop_assert_eq!(region.len(), n);
                prop_assert!(region.iter().all(|&r| r < k_eff));
                // Non-empty for every region index when k <= n.
                if k <= n {
                    for r in 0..k_eff {
                        prop_assert!(
                            region.contains(&r),
                            "region {} empty with k={} n={}", r, k, n
                        );
                    }
                }
                // Contiguous angular sectors are balanced: sizes differ by
                // at most one.
                let mut sizes = vec![0usize; k_eff];
                for &r in &region {
                    sizes[r] += 1;
                }
                let (lo, hi) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                prop_assert!(hi - lo <= 1, "unbalanced sizes {:?}", sizes);
            }

            #[test]
            fn assignment_ignores_radius_at_equal_angles(
                polar in proptest::collection::vec((0.0f64..std::f64::consts::TAU, 0.5f64..10.0), 2..6),
                theta in 0.0f64..std::f64::consts::TAU,
                (r1, r2) in (0.5f64..10.0, 0.5f64..10.0),
                k in 1usize..6,
            ) {
                // Two sites on the same ray from the centroid (equal
                // angular position, different radii), centroid pinned at
                // the origin by reflected partners. Swapping which site
                // carries which radius may reorder the tied sites in the
                // angular sort, so regions may permute *within* each
                // equal-angle pair — but never leak outside it: every
                // other site keeps its region and region sizes are
                // unchanged.
                let mut polar_a = polar.clone();
                polar_a.push((theta, r1));
                polar_a.push((theta, r2));
                let mut polar_b = polar;
                polar_b.push((theta, r2));
                polar_b.push((theta, r1));
                let net_a = positions_net(&symmetric_positions(&polar_a));
                let net_b = positions_net(&symmetric_positions(&polar_b));
                let ra = angular_regions(&net_a, k);
                let rb = angular_regions(&net_b, k);
                let n = ra.len();
                // symmetric_positions interleaves reflections: the added
                // pair sits at indices n-4 / n-2, its reflections (also an
                // equal-angle pair) at n-3 / n-1.
                for i in 0..n - 4 {
                    prop_assert_eq!(
                        ra[i], rb[i],
                        "site {} outside the tied pairs moved region", i
                    );
                }
                for pair in [[n - 4, n - 2], [n - 3, n - 1]] {
                    let mut a = [ra[pair[0]], ra[pair[1]]];
                    let mut b = [rb[pair[0]], rb[pair[1]]];
                    a.sort_unstable();
                    b.sort_unstable();
                    prop_assert_eq!(a, b, "tied pair changed its region multiset");
                }
                let sizes = |r: &[usize]| {
                    let mut s = vec![0usize; k];
                    for &x in r {
                        s[x] += 1;
                    }
                    s
                };
                prop_assert_eq!(sizes(&ra), sizes(&rb), "region sizes changed");
            }

            #[test]
            fn assignment_is_deterministic(
                polar in proptest::collection::vec((0.0f64..std::f64::consts::TAU, 0.5f64..10.0), 2..8),
                k in 1usize..9,
            ) {
                let net = positions_net(&symmetric_positions(&polar));
                prop_assert_eq!(angular_regions(&net, k), angular_regions(&net, k));
            }
        }
    }

    #[test]
    fn region_extraction_keeps_only_interior_entities() {
        let net = GeneratorConfig::preset(TopologyPreset::B).generate();
        let region = angular_regions(&net, 2);
        let sub = extract_region(&net, &region, 0).expect("region 0 is non-trivial");
        // Every extracted link's endpoints are region-0 sites (indices
        // re-based), and the sub-instance validates.
        assert!(sub.net.links().len() < net.links().len());
        assert!(!sub.link_map.is_empty());
        for l in sub.net.link_ids() {
            let link = sub.net.link(l);
            assert!(link.src.index() < sub.net.sites().len());
            assert!(link.dst.index() < sub.net.sites().len());
        }
    }
}
