//! # neuroplan
//!
//! The paper's primary contribution: **NeuroPlan**, a two-stage hybrid
//! network-planning system (SIGCOMM 2021).
//!
//! Stage 1 trains a deep-RL agent (GCN encoder over the node-link
//! transformed topology + actor-critic, §4.2) whose trajectories *add
//! capacity* to the network until the plan evaluator confirms every
//! demand survives every failure in the reliability policy. The best
//! feasible plan found becomes the **initial plan**.
//!
//! Stage 2 prunes the search space around that plan — each link's
//! capacity is bounded by `α ×` its first-stage value (the relax factor
//! of Fig. 2) — and solves the resulting ILP to optimality (§4.3). Our
//! ILP master works on capacity variables only, with the full
//! all-failures formulation enforced through lazy metric-inequality
//! (Benders) cuts separated by the plan evaluator; DESIGN.md §1 explains
//! why this is equivalent to the paper's monolithic ILP.
//!
//! The crate also ships the two comparison systems of §6:
//! [`baselines::solve_ilp`] (the raw ILP, which stops scaling beyond the
//! smallest topology) and [`baselines::solve_ilp_heur`] (hand-tuned
//! heuristics: capacity-unit enlargement and iterative failure
//! selection, the production workarounds of §3.2).

pub mod analysis;
pub mod baselines;
pub mod checkpoint;
pub mod config;
pub mod decompose;
pub mod env;
pub mod greedy;
pub mod master;
pub mod pipeline;
pub mod replan;
pub mod report;
pub mod service;

pub use analysis::{analyze_plan, PlanAnalysis};
pub use config::NeuroPlanConfig;
pub use decompose::{
    angular_regions, solve_decomposed, solve_decomposed_telemetry, DecomposedOutcome,
};
pub use env::PlanningEnv;
pub use greedy::greedy_augment;
pub use master::{solve_master, solve_master_telemetry, MasterConfig, MasterOutcome};
pub use np_supervisor::{PlanQuality, StageBudget, SupervisionReport, SupervisorConfig};
pub use pipeline::{validate_plan, FirstStage, NeuroPlan, NeuroPlanResult, PlanError, PlanFailure};
pub use replan::{EventReport, ReplanConfig, ReplanReport};
pub use report::{PhaseReport, PruningReport};
pub use service::NeuroPlanService;
