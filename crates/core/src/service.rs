//! The NeuroPlan planning service behind the `neuroplan serve` daemon.
//!
//! [`NeuroPlanService`] implements [`np_serve::PlanService`]: it turns a
//! JSON request spec into a planning run, threading the daemon's three
//! robustness hooks into the existing pipeline machinery —
//!
//! * **Crash safety / resume.** Every request plans under its own
//!   checkpoint chain at `<state_dir>/req-<id>/`, always opened in
//!   resume mode: a fresh request finds no records and starts clean, a
//!   journal-replayed or worker-death-retried request continues from
//!   whatever epochs the dead run flushed — the same bit-identical
//!   resume contract the CLI `--resume` path has (DESIGN.md §10).
//! * **Cancellation.** The daemon's per-request token goes straight
//!   into [`NeuroPlan::with_cancel`], so `cancel` frees the worker at
//!   the next supervisor stage / trainer epoch boundary.
//! * **Warm cache.** Results are cached under the same
//!   [`checkpoint::fingerprint`] that keys checkpoint chains. A repeat
//!   request skips the solve entirely (one evaluator validation pass, a
//!   few ms); a perturbed request (`events` in the spec) reuses the
//!   cached base plan as the carried plan of the incremental replan
//!   path (PR 8) instead of re-planning from scratch.
//!
//! ## Request spec
//!
//! ```json
//! {
//!   "preset": "a",              // or "family": "grid", "size_tier": "b",
//!                               //    "failure_model": "cuts"
//!   "fill": 0.5,                // optional capacity fill
//!   "seed": 7,                  // optional instance + run seed
//!   "default": false,           // true = release preset, else quick
//!   "alpha": 1.5,               // optional relax factor
//!   "stage_budget": 30.0,       // optional per-stage wall budget, secs
//!   "events": "seed=3,n=5"      // optional churn spec -> replan path
//! }
//! ```
//!
//! The result body carries `units`, `cost` (plus `cost_hex` for
//! bit-exact comparison), `quality`, the `fingerprint`, and whether the
//! run was served `"cold"` or `"warm"`.

use crate::checkpoint;
use crate::pipeline::{validate_plan, NeuroPlan, PlanFailure};
use crate::replan::ReplanConfig;
use crate::NeuroPlanConfig;
use np_chaos::checkpoint::f64_to_hex;
use np_churn::ChurnSpec;
use np_serve::{PlanService, RequestCtx, ServiceFailure};
use np_telemetry::{sys, Telemetry};
use np_topology::generator::{GeneratorConfig, TopologyPreset};
use np_topology::Network;
use serde_json::{json, Value};
use std::path::PathBuf;

/// The planner-backed [`PlanService`].
pub struct NeuroPlanService {
    /// Daemon state directory; per-request checkpoint chains live in
    /// `req-<id>/` subdirectories.
    pub state_dir: PathBuf,
    /// Telemetry shared with the daemon (counters under `serve`).
    pub tel: Telemetry,
}

impl NeuroPlanService {
    /// A service writing per-request checkpoints under `state_dir`.
    pub fn new(state_dir: impl Into<PathBuf>, tel: Telemetry) -> NeuroPlanService {
        NeuroPlanService {
            state_dir: state_dir.into(),
            tel,
        }
    }
}

fn bad(msg: impl Into<String>) -> ServiceFailure {
    ServiceFailure::Failed(msg.into())
}

/// Build the instance named by the spec (`preset` or `family` surface,
/// mirroring the CLI's generator flags).
fn network_of(spec: &Value) -> Result<Network, ServiceFailure> {
    let fill = spec.get("fill").and_then(|v| v.as_f64());
    let seed = spec.get("seed").and_then(|v| v.as_u64());
    if let Some(name) = spec.get("family").and_then(|v| v.as_str()) {
        use np_topology::{FailureModel, FamilyConfig, SizeTier, TopologyFamily};
        let family =
            TopologyFamily::parse(name).ok_or_else(|| bad(format!("unknown family `{name}`")))?;
        let tier = match spec.get("size_tier").and_then(|v| v.as_str()) {
            Some(t) => SizeTier::parse(t).ok_or_else(|| bad(format!("unknown size tier `{t}`")))?,
            None => SizeTier::B,
        };
        let mut cfg = FamilyConfig::new(family, tier);
        if let Some(m) = spec.get("failure_model").and_then(|v| v.as_str()) {
            cfg.failure_model = FailureModel::parse(m)
                .ok_or_else(|| bad(format!("unknown failure model `{m}`")))?;
        }
        if let Some(f) = fill {
            cfg.capacity_fill = f;
        }
        if let Some(s) = seed {
            cfg.seed = s;
        }
        return cfg
            .try_generate()
            .map_err(|e| bad(format!("invalid family config: {e}")));
    }
    let preset = match spec.get("preset").and_then(|v| v.as_str()) {
        Some("a") | Some("A") => TopologyPreset::A,
        Some("b") | Some("B") => TopologyPreset::B,
        Some("c") | Some("C") => TopologyPreset::C,
        Some("d") | Some("D") => TopologyPreset::D,
        Some("e") | Some("E") => TopologyPreset::E,
        Some(other) => return Err(bad(format!("unknown preset `{other}`"))),
        None => return Err(bad("spec needs a `preset` or a `family`")),
    };
    let mut cfg = GeneratorConfig::preset(preset);
    if let Some(f) = fill {
        cfg.capacity_fill = f;
    }
    if spec.get("long_term").and_then(|v| v.as_bool()) == Some(true) {
        cfg.long_term = true;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    cfg.try_generate()
        .map_err(|e| bad(format!("invalid generator config: {e}")))
}

/// Build the planner configuration from the spec's knobs.
fn config_of(spec: &Value) -> Result<NeuroPlanConfig, ServiceFailure> {
    let mut cfg = if spec.get("default").and_then(|v| v.as_bool()) == Some(true) {
        NeuroPlanConfig::default()
    } else {
        NeuroPlanConfig::quick()
    };
    if let Some(alpha) = spec.get("alpha").and_then(|v| v.as_f64()) {
        if alpha < 1.0 {
            return Err(bad("`alpha` must be >= 1"));
        }
        cfg.relax_factor = alpha;
    }
    if let Some(seed) = spec.get("seed").and_then(|v| v.as_u64()) {
        cfg = cfg.with_seed(seed);
    }
    if let Some(secs) = spec.get("stage_budget").and_then(|v| v.as_f64()) {
        if secs < 0.0 {
            return Err(bad("`stage_budget` must be >= 0"));
        }
        cfg = cfg.with_stage_budget(secs);
    }
    if let Some(n) = spec.get("workers").and_then(|v| v.as_u64()) {
        cfg = cfg.with_workers((n as usize).max(1));
    }
    Ok(cfg)
}

fn units_of(blob: &Value) -> Option<Vec<u32>> {
    blob.get("units")?
        .as_array()?
        .iter()
        .map(|v| v.as_u64().map(|u| u as u32))
        .collect()
}

fn result_body(
    id: u64,
    units: &[u32],
    cost: f64,
    quality: &str,
    fingerprint: &str,
    cache: &str,
) -> Value {
    json!({
        "id": id,
        "units": units,
        "cost": cost,
        "cost_hex": f64_to_hex(cost),
        "quality": quality,
        "fingerprint": fingerprint,
        "cache": cache,
    })
}

impl PlanService for NeuroPlanService {
    fn execute(&self, spec: &Value, ctx: &RequestCtx<'_>) -> Result<Value, ServiceFailure> {
        let net = network_of(spec)?;
        let cfg = config_of(spec)?;
        let fp = checkpoint::fingerprint(&net, &cfg);
        let events_spec = spec.get("events").and_then(|v| v.as_str());

        // Warm path: a cached plan for this exact fingerprint.
        let cached = ctx.cache.lock().unwrap().get(&fp);
        if let Some(blob) = &cached {
            if let Some(units) = units_of(blob) {
                match events_spec {
                    None => {
                        // Repeat request: one evaluator validation pass
                        // instead of a full RL + ILP solve.
                        if validate_plan(&net, &units).is_ok() {
                            self.tel.incr(sys::SERVE, "warm_hits", 1);
                            let cost = blob.get("cost").and_then(|v| v.as_f64()).unwrap_or(0.0);
                            let quality = blob
                                .get("quality")
                                .and_then(|v| v.as_str())
                                .unwrap_or("incumbent");
                            return Ok(result_body(ctx.id, &units, cost, quality, &fp, "warm"));
                        }
                    }
                    Some(raw) => {
                        // Perturbed repeat: carry the cached plan into
                        // the incremental replan path.
                        let churn = ChurnSpec::parse(raw)
                            .map_err(|e| bad(format!("invalid events spec: {e}")))?;
                        let events = churn.resolve(&net);
                        let planner = NeuroPlan::with_telemetry(cfg.clone(), self.tel.clone())
                            .with_cancel(ctx.cancel.clone());
                        self.tel.incr(sys::SERVE, "warm_hits", 1);
                        let report = planner
                            .replan_from(&net, &units, &events, &ReplanConfig::default())
                            .map_err(|e| match e {
                                PlanFailure::Cancelled => ServiceFailure::Cancelled,
                                other => bad(format!("replan failed: {other}")),
                            })?;
                        let quality = report
                            .events
                            .iter()
                            .rev()
                            .find(|e| e.skipped.is_none())
                            .map(|e| e.quality.name())
                            .unwrap_or("optimal");
                        return Ok(result_body(
                            ctx.id,
                            &report.final_units,
                            report.final_cost,
                            quality,
                            &fp,
                            "warm",
                        ));
                    }
                }
            }
        }

        // Cold path: the full pipeline under this request's own
        // checkpoint chain. Resume mode is unconditional — an empty
        // chain starts fresh, a replayed one continues bit-identically.
        let req_dir = self.state_dir.join(format!("req-{}", ctx.id));
        let planner = NeuroPlan::with_telemetry(cfg.clone(), self.tel.clone())
            .with_checkpoint(&req_dir, true)
            .with_cancel(ctx.cancel.clone());
        let map_fail = |e: PlanFailure| match e {
            PlanFailure::Cancelled => ServiceFailure::Cancelled,
            other => bad(format!("plan failed: {other}")),
        };
        let (units, cost, quality) = match events_spec {
            None => {
                let result = planner.try_plan(&net).map_err(map_fail)?;
                (result.final_units, result.final_cost, result.quality.name())
            }
            Some(raw) => {
                let churn =
                    ChurnSpec::parse(raw).map_err(|e| bad(format!("invalid events spec: {e}")))?;
                let events = churn.resolve(&net);
                let report = planner
                    .replan(&net, &events, &ReplanConfig::default())
                    .map_err(map_fail)?;
                let quality = report
                    .events
                    .iter()
                    .rev()
                    .find(|e| e.skipped.is_none())
                    .map(|e| e.quality.name())
                    .unwrap_or("optimal");
                (report.final_units, report.final_cost, quality)
            }
        };

        // Keep the plan warm for repeats and perturbations. Only the
        // base (event-free) plan is cached: it is what both warm paths
        // start from.
        if events_spec.is_none() {
            ctx.cache.lock().unwrap().put(
                &fp,
                json!({
                    "units": units,
                    "cost": cost,
                    "quality": quality,
                }),
            );
        }
        Ok(result_body(ctx.id, &units, cost, quality, &fp, "cold"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_chaos::CancelToken;
    use np_serve::WarmCache;
    use std::sync::Mutex;

    fn ctx(cache: &Mutex<WarmCache>, id: u64) -> RequestCtx<'_> {
        RequestCtx {
            id,
            resume: false,
            cancel: CancelToken::new(),
            cache,
        }
    }

    fn tiny_spec() -> Value {
        // Preset A is the smallest paper WAN; quick config keeps the
        // solve in test-friendly time.
        json!({ "preset": "a", "seed": 3 })
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("np-svc-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bad_specs_fail_without_planning() {
        let cache = Mutex::new(WarmCache::new(4));
        let svc = NeuroPlanService::new(tmp("bad"), Telemetry::noop());
        for spec in [
            json!({}),
            json!({"preset": "z"}),
            json!({"family": "nope"}),
            json!({"preset": "a", "alpha": 0.5}),
        ] {
            match svc.execute(&spec, &ctx(&cache, 1)) {
                Err(ServiceFailure::Failed(_)) => {}
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn cold_then_warm_round_trip_is_bit_identical() {
        let cache = Mutex::new(WarmCache::new(4));
        let dir = tmp("warm");
        let svc = NeuroPlanService::new(dir.clone(), Telemetry::noop());
        let spec = tiny_spec();

        let t0 = std::time::Instant::now();
        let cold = svc.execute(&spec, &ctx(&cache, 1)).expect("cold plan");
        let cold_time = t0.elapsed();
        assert_eq!(cold.get("cache").and_then(|v| v.as_str()), Some("cold"));

        let t1 = std::time::Instant::now();
        let warm = svc.execute(&spec, &ctx(&cache, 2)).expect("warm plan");
        let warm_time = t1.elapsed();
        assert_eq!(warm.get("cache").and_then(|v| v.as_str()), Some("warm"));
        assert_eq!(
            serde_json::to_string(warm.get("units").unwrap()).unwrap(),
            serde_json::to_string(cold.get("units").unwrap()).unwrap(),
            "the warm plan is the cached plan"
        );
        assert_eq!(
            warm.get("cost_hex").and_then(|v| v.as_str()),
            cold.get("cost_hex").and_then(|v| v.as_str()),
            "bit-identical cost"
        );
        assert!(
            warm_time < cold_time,
            "warm ({warm_time:?}) must beat cold ({cold_time:?})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_before_start_reports_cancelled() {
        let cache = Mutex::new(WarmCache::new(4));
        let dir = tmp("cancel");
        let svc = NeuroPlanService::new(dir.clone(), Telemetry::noop());
        let cancel = CancelToken::new();
        cancel.cancel();
        let c = RequestCtx {
            id: 1,
            resume: false,
            cancel,
            cache: &cache,
        };
        match svc.execute(&tiny_spec(), &c) {
            Err(ServiceFailure::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
