//! Post-plan analysis: where the headroom is, scenario by scenario.
//!
//! Once a plan ships, operators ask different questions than the solver
//! did: *which failure comes closest to breaking us* (the tightest λ),
//! and *which links are loaded in the worst case* (upgrade candidates
//! for the next cycle). This module answers both from the same
//! max-concurrent-flow machinery the evaluator uses.

use np_eval::scenario::{build_all, ScenarioCtx};
use np_flow::mwu::{max_concurrent_flow, MwuConfig};
use np_topology::{LinkId, Network};

/// Load picture of one scenario under a fixed plan.
#[derive(Clone, Debug)]
pub struct ScenarioLoad {
    /// Dense scenario index (0 = no failure).
    pub index: usize,
    /// Human-readable scenario name.
    pub name: String,
    /// Concurrent-flow headroom: λ ≥ 1 means the scenario is satisfied
    /// with `(λ − 1)·100%` slack; λ < 1 means violated.
    pub lambda: f64,
    /// Worst-loaded links `(link, utilization)` at the concurrent-flow
    /// routing, utilization in `[0, 1]`, descending.
    pub bottlenecks: Vec<(LinkId, f64)>,
}

/// Whole-plan analysis.
#[derive(Clone, Debug)]
pub struct PlanAnalysis {
    /// Per-scenario loads, in scenario order.
    pub scenarios: Vec<ScenarioLoad>,
    /// Per-link worst-case utilization across scenarios, descending.
    pub hot_links: Vec<(LinkId, f64)>,
}

impl PlanAnalysis {
    /// The scenario with the least headroom.
    pub fn tightest(&self) -> Option<&ScenarioLoad> {
        self.scenarios
            .iter()
            .min_by(|a, b| a.lambda.partial_cmp(&b.lambda).expect("finite"))
    }

    /// Render a short operator-facing summary.
    pub fn describe(&self, net: &Network) -> String {
        let mut out = String::new();
        if let Some(tight) = self.tightest() {
            out.push_str(&format!(
                "tightest scenario: {} (headroom {:+.1}%)\n",
                tight.name,
                (tight.lambda - 1.0) * 100.0
            ));
        }
        out.push_str("hottest links (worst-case utilization):\n");
        for &(l, u) in self.hot_links.iter().take(5) {
            let link = net.link(l);
            out.push_str(&format!(
                "  {l} {} - {}: {:.0}%\n",
                net.site(link.src).name,
                net.site(link.dst).name,
                u * 100.0
            ));
        }
        out
    }
}

/// Analyze a plan (total units per link) against every scenario.
pub fn analyze_plan(net: &Network, units: &[u32]) -> PlanAnalysis {
    assert_eq!(units.len(), net.links().len());
    let mut ctxs = build_all(net, true);
    let caps = |l: LinkId| f64::from(units[l.index()]) * net.unit_gbps;
    let mut scenarios = Vec::with_capacity(ctxs.len());
    let mut worst: Vec<f64> = vec![0.0; net.links().len()];
    for (index, ctx) in ctxs.iter_mut().enumerate() {
        ctx.refresh(caps);
        let load = scenario_load(net, ctx, index);
        for &(l, u) in &load.bottlenecks {
            worst[l.index()] = worst[l.index()].max(u);
        }
        scenarios.push(load);
    }
    let mut hot_links: Vec<(LinkId, f64)> = worst
        .iter()
        .enumerate()
        .filter(|&(_, &u)| u > 0.0)
        .map(|(i, &u)| (LinkId::new(i), u))
        .collect();
    hot_links.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    PlanAnalysis {
        scenarios,
        hot_links,
    }
}

fn scenario_load(net: &Network, ctx: &ScenarioCtx, index: usize) -> ScenarioLoad {
    let name = match index {
        0 => "no-failure".to_string(),
        k => net.failure(np_topology::FailureId::new(k - 1)).name.clone(),
    };
    let cf = max_concurrent_flow(
        &ctx.graph,
        &ctx.commodities,
        &MwuConfig {
            epsilon: 0.08,
            ..Default::default()
        },
    );
    // Utilization per link = max over its two arcs of flow/cap, using the
    // scaled (capacity-feasible) MWU flow normalized to serve exactly the
    // demands when λ ≥ 1.
    let scale = if cf.lambda > 1.0 {
        1.0 / cf.lambda
    } else {
        1.0
    };
    let mut util: Vec<f64> = vec![0.0; net.links().len()];
    for (a, arc) in ctx.graph.arcs().iter().enumerate() {
        if let Some(l) = arc.link {
            if arc.cap > 0.0 {
                let u = (cf.flow[a] * scale / arc.cap).min(1.0);
                util[l.index()] = util[l.index()].max(u);
            }
        }
    }
    let mut bottlenecks: Vec<(LinkId, f64)> = util
        .iter()
        .enumerate()
        .filter(|&(_, &u)| u > 1e-9)
        .map(|(i, &u)| (LinkId::new(i), u))
        .collect();
    bottlenecks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    bottlenecks.truncate(10);
    ScenarioLoad {
        index,
        name,
        lambda: cf.lambda,
        bottlenecks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_augment;
    use np_eval::EvalConfig;
    use np_topology::generator::GeneratorConfig;

    fn planned_instance() -> (Network, Vec<u32>) {
        let mut net = GeneratorConfig::a_variant(0.0).generate();
        greedy_augment(&mut net, EvalConfig::default()).unwrap();
        let units = net.link_ids().map(|l| net.link(l).capacity_units).collect();
        (net, units)
    }

    #[test]
    fn feasible_plans_have_headroom_everywhere() {
        let (net, units) = planned_instance();
        let analysis = analyze_plan(&net, &units);
        assert_eq!(analysis.scenarios.len(), net.failures().len() + 1);
        for s in &analysis.scenarios {
            assert!(
                s.lambda >= 0.95,
                "scenario {} reports λ = {} on a feasible plan",
                s.name,
                s.lambda
            );
        }
        assert!(!analysis.hot_links.is_empty());
        assert!(analysis.hot_links.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn overprovisioning_raises_every_lambda() {
        let (net, units) = planned_instance();
        let base = analyze_plan(&net, &units);
        let doubled: Vec<u32> = units.iter().map(|&u| u * 2).collect();
        let rich = analyze_plan(&net, &doubled);
        let min_base = base.tightest().unwrap().lambda;
        let min_rich = rich.tightest().unwrap().lambda;
        assert!(
            min_rich >= min_base * 1.5,
            "doubling capacity must raise the tightest headroom ({min_base} -> {min_rich})"
        );
    }

    #[test]
    fn describe_names_real_entities() {
        let (net, units) = planned_instance();
        let analysis = analyze_plan(&net, &units);
        let text = analysis.describe(&net);
        assert!(text.contains("tightest scenario"));
        assert!(text.contains('%'));
    }

    #[test]
    fn empty_plan_reports_violations() {
        let net = GeneratorConfig::a_variant(0.0).generate();
        let zeros = vec![0u32; net.links().len()];
        let analysis = analyze_plan(&net, &zeros);
        assert!(analysis.tightest().unwrap().lambda < 1.0);
    }
}
