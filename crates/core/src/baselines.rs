//! The comparison systems of §6: *ILP* and *ILP-heur*.

use crate::greedy::greedy_augment;
use crate::master::{solve_master, MasterConfig, MasterOutcome};
use np_eval::{EvalConfig, PlanEvaluator};
use np_flow::{k_shortest_paths, FlowGraph};
use np_lp::{LpBackend, MipStatus};
use np_topology::Network;
use std::time::Instant;

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// Underlying master outcome.
    pub master: MasterOutcome,
    /// Whether the run counts as "solved" for Fig. 9 purposes: the solver
    /// *proved* optimality within its budget. Anything else is the cross
    /// in the paper's plot.
    pub solved_to_optimality: bool,
    /// Wall-clock time spent.
    pub elapsed_secs: f64,
}

impl BaselineOutcome {
    /// Plan cost (∞ when no incumbent was found).
    pub fn cost(&self) -> f64 {
        self.master.cost
    }
}

/// Resource budget for a baseline run — the knob that makes "ILP fails to
/// scale" an observable outcome rather than a multi-week wait.
#[derive(Clone, Copy, Debug)]
pub struct BaselineBudget {
    /// Branch-and-bound node cap.
    pub node_limit: usize,
    /// Wall-clock cap in seconds.
    pub time_limit_secs: f64,
}

impl Default for BaselineBudget {
    fn default() -> Self {
        BaselineBudget {
            node_limit: 4000,
            time_limit_secs: 120.0,
        }
    }
}

/// The raw **ILP** of §3.1: the exact formulation over the full
/// (spectrum-bounded) search space, no pruning, no heuristics, no warm
/// start. Optimal when it finishes — and expected to blow its budget on
/// anything bigger than topology A (Fig. 9's crosses).
pub fn solve_ilp(net: &Network, eval_cfg: EvalConfig, budget: BaselineBudget) -> BaselineOutcome {
    let t0 = Instant::now();
    let mut evaluator = PlanEvaluator::new(net, eval_cfg);
    let cfg = MasterConfig {
        upper_bounds: MasterConfig::spectrum_bounds(net),
        cutoff: None,
        node_limit: budget.node_limit,
        time_limit_secs: budget.time_limit_secs,
        max_cuts_per_round: 8,
        seed_cuts: vec![],
        granularity: 1,
        gap_tol: MasterConfig::DEFAULT_GAP,
        warm_units: None,
        polish_final: true,
        lp_backend: LpBackend::Auto,
    };
    let master = solve_master(net, &mut evaluator, &cfg);
    BaselineOutcome {
        solved_to_optimality: master.status == MipStatus::Optimal,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        master,
    }
}

/// **ILP-heur** (§3.2): the production workarounds, hand-tuned once and
/// applied to every topology (which is exactly why the paper finds it
/// over- or under-trades on individual instances):
///
/// * *capacity-unit enlargement* — capacity moves in chunks of
///   `granularity` units, shrinking the integer lattice;
/// * *topology transformation* — capacity additions are restricted to
///   links lying on some k-shortest route of some flow (everything else
///   is frozen at its baseline);
/// * *warm start* — a greedy certificate-guided plan provides the
///   incumbent cutoff (the "previously known good design");
/// * *failure selection* — failures enter the model lazily, in a fixed
///   order, only when violated (our Benders loop is precisely this
///   heuristic made exact).
pub fn solve_ilp_heur(
    net: &Network,
    eval_cfg: EvalConfig,
    budget: BaselineBudget,
    granularity: u32,
) -> BaselineOutcome {
    let t0 = Instant::now();
    // Warm start: greedy feasible plan.
    let mut warm = net.clone();
    let warm_cost = greedy_augment(&mut warm, eval_cfg).ok();
    let mut evaluator = PlanEvaluator::new(net, eval_cfg);
    // Topology transformation: freeze links off every flow's 3 shortest
    // routes at their baseline.
    let mut bounds = MasterConfig::spectrum_bounds(net);
    let on_route = k_shortest_route_links(net, 3);
    for l in net.link_ids() {
        if !on_route[l.index()] {
            bounds[l.index()] = net.base_units(l);
        }
    }
    // The warm plan must stay inside the restricted bounds for the cutoff
    // to be valid; widen where it is not (the heuristic keeps known-good
    // designs reachable).
    for l in net.link_ids() {
        bounds[l.index()] = bounds[l.index()].max(warm.link(l).capacity_units);
    }
    let cfg = MasterConfig {
        upper_bounds: bounds,
        cutoff: warm_cost.map(|c| c * (1.0 + 1e-9) + 1e-9),
        node_limit: budget.node_limit,
        time_limit_secs: budget.time_limit_secs,
        max_cuts_per_round: 8,
        seed_cuts: vec![],
        granularity,
        gap_tol: MasterConfig::DEFAULT_GAP,
        // The production posture: the known-good design both warm-starts
        // the solver and is the guaranteed fallback.
        warm_units: warm_cost.is_some().then(|| {
            warm.link_ids()
                .map(|l| warm.link(l).capacity_units)
                .collect()
        }),
        polish_final: true,
        lp_backend: LpBackend::Auto,
    };
    let master = solve_master(net, &mut evaluator, &cfg);
    BaselineOutcome {
        // The chunked lattice is already a relaxation-of-optimality: even
        // a proven optimum is only optimal *within the heuristic*, which
        // is the paper's point. We still report solver status faithfully.
        solved_to_optimality: master.status == MipStatus::Optimal,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        master,
    }
}

/// Which links lie on one of the `k` shortest (by length) routes of some
/// flow, in the no-failure topology.
fn k_shortest_route_links(net: &Network, k: usize) -> Vec<bool> {
    let mut graph = FlowGraph::new(net.sites().len());
    let mut arc_link = Vec::new();
    for l in net.link_ids() {
        let link = net.link(l);
        graph.add_link_arcs(link.src.index(), link.dst.index(), 1.0, l);
        arc_link.push(l);
        arc_link.push(l);
    }
    let lengths: Vec<f64> = (0..graph.num_arcs())
        .map(|a| net.link(arc_link[a]).length_km)
        .collect();
    let mut on_route = vec![false; net.links().len()];
    let mut pairs: Vec<(usize, usize)> = net
        .flows()
        .iter()
        .map(|f| (f.src.index(), f.dst.index()))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    for (src, dst) in pairs {
        for path in k_shortest_paths(&graph, src, dst, &lengths, k) {
            for a in path.arcs {
                on_route[arc_link[a].index()] = true;
            }
        }
    }
    on_route
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::apply_units;
    use crate::pipeline::validate_plan;
    use np_topology::generator::GeneratorConfig;

    fn instance() -> Network {
        GeneratorConfig::a_variant(0.0).generate()
    }

    #[test]
    fn raw_ilp_solves_topology_a_optimally() {
        let net = instance();
        let out = solve_ilp(&net, EvalConfig::default(), BaselineBudget::default());
        assert!(
            out.solved_to_optimality,
            "topology A is within the ILP's reach"
        );
        validate_plan(&net, &out.master.units).expect("ILP plan validates");
    }

    #[test]
    fn ilp_heur_is_feasible_but_no_cheaper_than_ilp() {
        let net = instance();
        let exact = solve_ilp(&net, EvalConfig::default(), BaselineBudget::default());
        let heur = solve_ilp_heur(&net, EvalConfig::default(), BaselineBudget::default(), 4);
        assert!(heur.master.has_plan());
        validate_plan(&net, &heur.master.units).expect("ILP-heur plan validates");
        // Both incumbents carry the solver's practical gap; the heuristic
        // cannot beat the exact search by more than that band.
        assert!(
            heur.cost() >= exact.cost() * (1.0 - 2.0 * MasterConfig::DEFAULT_GAP) - 1e-6,
            "heuristic cannot beat the exact optimum: {} vs {}",
            heur.cost(),
            exact.cost()
        );
    }

    #[test]
    fn chunked_capacities_land_on_the_coarse_lattice() {
        let net = instance();
        let heur = solve_ilp_heur(&net, EvalConfig::default(), BaselineBudget::default(), 4);
        // Either the chunked master solved (all additions multiples of 4)
        // or the greedy fallback shipped. Both must be feasible.
        let mut check = net.clone();
        apply_units(&mut check, &heur.master.units);
        let mut ev = PlanEvaluator::new(&check, EvalConfig::default());
        assert!(ev.check_network(&check).feasible);
        // Note: the master's 1-opt polishing trims single units off the
        // chunked incumbent, so the shipped plan need not stay on the
        // coarse lattice — only the *search* was restricted to it. The
        // observable contract is feasibility plus cost consistency.
        assert!(
            (crate::master::plan_cost_of(&net, &heur.master.units) - heur.cost()).abs()
                <= 1e-6 * heur.cost().max(1.0)
        );
    }

    #[test]
    fn strangled_budget_fails_to_prove_optimality() {
        let net = instance();
        let out = solve_ilp(
            &net,
            EvalConfig::default(),
            BaselineBudget {
                node_limit: 1,
                time_limit_secs: 0.05,
            },
        );
        assert!(
            !out.solved_to_optimality,
            "one node cannot prove optimality here"
        );
    }
}
