//! Solver-agnostic optimization model builder.
//!
//! Mirrors the slice of the Gurobi model API the paper's formulation
//! needs: bounded (possibly integer) variables, a linear minimization
//! objective, and linear constraints with `≤ / = / ≥` senses.

use std::fmt;

/// Index of a variable in a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Index of a constraint in a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstrId(pub usize);

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Eq => "=",
            Sense::Ge => ">=",
        })
    }
}

/// A decision variable.
#[derive(Clone, Debug)]
pub struct Variable {
    /// Name for diagnostics.
    pub name: String,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
    /// Objective coefficient (the model always *minimizes*).
    pub obj: f64,
    /// Whether the MILP solver must drive this variable integral.
    pub integer: bool,
}

/// A linear constraint `Σ coeffs · x  sense  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Name for diagnostics.
    pub name: String,
    /// Sparse coefficient list; at most one entry per variable
    /// (duplicates are merged by [`Model::add_constr`]).
    pub coeffs: Vec<(VarId, f64)>,
    /// Relation between the expression and `rhs`.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization model.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// Model name, used in solver logs.
    pub name: String,
    vars: Vec<Variable>,
    constrs: Vec<Constraint>,
}

impl Model {
    /// A fresh empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            vars: Vec::new(),
            constrs: Vec::new(),
        }
    }

    /// Add a variable; returns its id. `lb ≤ ub` is required.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lb: f64,
        ub: f64,
        obj: f64,
        integer: bool,
    ) -> VarId {
        assert!(lb <= ub, "variable bounds must satisfy lb <= ub");
        assert!(!lb.is_nan() && !ub.is_nan() && obj.is_finite());
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            lb,
            ub,
            obj,
            integer,
        });
        id
    }

    /// Add a continuous variable on `[0, ∞)` with objective `obj`.
    pub fn add_nonneg(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, obj, false)
    }

    /// Add a constraint; duplicate variable entries in `coeffs` are summed.
    pub fn add_constr(
        &mut self,
        name: impl Into<String>,
        coeffs: Vec<(VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> ConstrId {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut merged = coeffs;
        merged.retain(|&(v, c)| {
            assert!(
                v.0 < self.vars.len(),
                "constraint references unknown variable"
            );
            assert!(c.is_finite());
            c != 0.0
        });
        merged.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(merged.len());
        for (v, c) in merged {
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 += c,
                _ => out.push((v, c)),
            }
        }
        let id = ConstrId(self.constrs.len());
        self.constrs.push(Constraint {
            name: name.into(),
            coeffs: out,
            sense,
            rhs,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constrs(&self) -> usize {
        self.constrs.len()
    }

    /// All variables, indexed by [`VarId`].
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All constraints, indexed by [`ConstrId`].
    pub fn constrs(&self) -> &[Constraint] {
        &self.constrs
    }

    /// The variable with the given id.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// Tighten the bounds of a variable in place (used by branch & bound).
    pub fn set_bounds(&mut self, id: VarId, lb: f64, ub: f64) {
        assert!(lb <= ub, "variable bounds must satisfy lb <= ub");
        self.vars[id.0].lb = lb;
        self.vars[id.0].ub = ub;
    }

    /// Drop constraints with index ≥ `start` for which `keep` returns
    /// false. Used by the MILP solver's cut-pool management; indices of
    /// surviving rows shift, so callers must not hold `ConstrId`s across
    /// this call.
    pub fn purge_constrs(&mut self, start: usize, mut keep: impl FnMut(&Constraint) -> bool) {
        let mut i = start;
        while i < self.constrs.len() {
            if keep(&self.constrs[i]) {
                i += 1;
            } else {
                self.constrs.remove(i);
            }
        }
    }

    /// Evaluate a constraint's slack at a point: positive slack means
    /// strictly satisfied, negative means violated (`Eq` rows return the
    /// negated absolute residual).
    pub fn row_slack(&self, c: &Constraint, x: &[f64]) -> f64 {
        let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v.0]).sum();
        match c.sense {
            Sense::Le => c.rhs - lhs,
            Sense::Ge => lhs - c.rhs,
            Sense::Eq => -(lhs - c.rhs).abs(),
        }
    }

    /// Objective value of a point (no feasibility implied).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Largest constraint violation of a point (0 means feasible w.r.t.
    /// rows; bounds are checked separately).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.constrs {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v.0]).sum();
            let viol = match c.sense {
                Sense::Le => lhs - c.rhs,
                Sense::Ge => c.rhs - lhs,
                Sense::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Whether `x` satisfies all rows and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if self.max_violation(x) > tol {
            return false;
        }
        self.vars
            .iter()
            .zip(x)
            .all(|(v, &xi)| xi >= v.lb - tol && xi <= v.ub + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_small_model() {
        let mut m = Model::new("t");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let y = m.add_nonneg("y", 2.0);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constrs(), 1);
        assert_eq!(m.var(x).ub, 10.0);
        assert!(m.var(y).ub.is_infinite());
    }

    #[test]
    fn duplicate_coefficients_are_merged() {
        let mut m = Model::new("t");
        let x = m.add_nonneg("x", 1.0);
        m.add_constr("c", vec![(x, 1.0), (x, 2.0)], Sense::Le, 5.0);
        assert_eq!(m.constrs()[0].coeffs, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut m = Model::new("t");
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constr("c", vec![(x, 0.0), (y, 1.0)], Sense::Le, 5.0);
        assert_eq!(m.constrs()[0].coeffs, vec![(y, 1.0)]);
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut m = Model::new("t");
        let x = m.add_var("x", 0.0, 4.0, 3.0, false);
        m.add_constr("c", vec![(x, 2.0)], Sense::Le, 6.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[3.5], 1e-9)); // row violated
        assert!(!m.is_feasible(&[5.0], 1e-9)); // bound violated
        assert_eq!(m.objective_value(&[2.0]), 6.0);
        assert!((m.max_violation(&[4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lb <= ub")]
    fn rejects_crossed_bounds() {
        Model::new("t").add_var("x", 1.0, 0.0, 0.0, false);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_unknown_variables_in_rows() {
        let mut m = Model::new("t");
        m.add_constr("c", vec![(VarId(3), 1.0)], Sense::Le, 1.0);
    }
}
