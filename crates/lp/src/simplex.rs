//! Bounded-variable two-phase simplex with pluggable basis engines.
//!
//! The implementation follows the classic textbook method (Chvátal ch. 8,
//! bounded variables):
//!
//! 1. every row gets a slack column (`≤` → `+s`, `≥` → `−s`, `=` → a
//!    fixed slack), turning the system into `Ax = b` with box bounds;
//! 2. **phase 1** starts from an all-artificial basis absorbing the
//!    residual of the initial point and minimizes the sum of artificial
//!    values; a positive optimum proves infeasibility;
//! 3. **phase 2** minimizes the real objective with the artificials
//!    pinned to zero.
//!
//! Pricing is Dantzig (most-negative reduced cost) with an automatic
//! switch to Bland's rule after a run of degenerate pivots, which
//! guarantees termination. The representation of `B⁻¹` is behind the
//! [`Engine`] switch: the historical **dense** row-major inverse updated
//! with elementary row operations, or the default **sparse** LU-factorized
//! basis with eta updates ([`crate::factor`]). Both engines share this
//! driver — pricing, ratio test and pivot order are byte-for-byte the same
//! code — so the backends agree wherever floating point lets them.
//!
//! Warm starts ([`solve_lp_warm`]) reinstall a previously-optimal basis
//! ([`WarmBasis`]) after bound changes or appended rows and re-optimize
//! with the bounded-variable **dual simplex** ([`crate::dual`]) instead of
//! re-running both phases; every failure path falls back to a cold solve,
//! so warm starting is purely an accelerator, never a semantics change.

// Index loops here run over rows/columns of the dense basis inverse with
// strided `r * m + i` addressing; enumerate-based rewrites obscure the
// linear algebra without changing the generated code.
#![allow(clippy::needless_range_loop)]

use std::time::Instant;

use crate::factor::SparseBasis;
use crate::model::{Model, Sense};
use crate::sparse::{CscMatrix, LpBackend, ResolvedBackend, WarmBasis, WarmCol};

/// Outcome of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists (phase-1 optimum is positive).
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
    /// Iteration limit hit before convergence.
    IterationLimit,
    /// The basis factorization failed (singular basis) even after the
    /// recovery ladder — bound perturbation, then Bland's rule from the
    /// first pivot. Callers must treat the solution as unknown (like
    /// `IterationLimit`), never as a feasibility verdict.
    NumericalFailure,
}

/// Solver tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimplexConfig {
    /// Hard cap on pivots across both phases; 0 means automatic
    /// (`200·(m+n) + 20_000`).
    pub max_iterations: usize,
    /// Feasibility / optimality tolerance.
    pub tol: f64,
    /// Numerical-drift bound on incremental basis updates. The dense
    /// engine refactorizes every this many pivots (the historical
    /// bit-exact reference behavior); the sparse engine refactorizes
    /// when the *eta file* reaches this many transforms or its fill-in
    /// outweighs the LU factors ([`SparseBasis::should_refactor`]) —
    /// never on a pivot-count schedule.
    pub refactor_every: usize,
    /// Which basis engine to use (default: resolve `NP_LP_BACKEND`,
    /// falling back to sparse).
    pub backend: LpBackend,
    /// Collect per-stage wall timers (factorize / ftran-btran /
    /// pricing) into [`SolveStats`]. Off by default: the clock reads
    /// are cheap but not free, and only `--profile` consumers look at
    /// them.
    pub collect_timing: bool,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            max_iterations: 0,
            tol: 1e-7,
            refactor_every: 64,
            backend: LpBackend::Auto,
            collect_timing: false,
        }
    }
}

/// Per-solve accounting for the `lp.*` telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Whether this solve reused a warm basis (dual-simplex path).
    pub warm: bool,
    /// Pivots spent in the warm re-optimization (dual restore + primal
    /// cleanup); 0 for cold solves.
    pub warm_pivots: u64,
    /// Basis factorizations performed.
    pub refactorizations: u64,
    /// Longest eta file between refactorizations (0 on dense).
    pub peak_eta_len: u64,
    /// Wall spent in basis factorizations, µs (0 unless
    /// `collect_timing`).
    pub factor_us: u64,
    /// Wall spent in FTRAN/BTRAN solves, µs (0 unless `collect_timing`).
    pub ftran_btran_us: u64,
    /// Wall spent in pricing / ratio-test column scans, µs (0 unless
    /// `collect_timing`).
    pub pricing_us: u64,
}

/// Nanosecond-resolution stage clocks, accumulated only when
/// `collect_timing` is set (µs resolution would truncate the many
/// sub-µs FTRAN calls to zero). `Cell`s so `&self` solve paths
/// (`duals`, `ftran`) can charge themselves without threading `&mut`
/// through every read-only caller.
#[derive(Debug, Default)]
pub(crate) struct StageTimers {
    factor_ns: std::cell::Cell<u64>,
    solve_ns: std::cell::Cell<u64>,
    price_ns: std::cell::Cell<u64>,
}

#[inline]
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Final status; `x`/`objective` are meaningful for `Optimal` (and
    /// best-effort for `IterationLimit`).
    pub status: LpStatus,
    /// Objective value of `x`.
    pub objective: f64,
    /// Values of the *structural* variables, indexed like `model.vars()`.
    pub x: Vec<f64>,
    /// Row duals `y = c_B B⁻¹` at termination, indexed like
    /// `model.constrs()`. Sign convention: reduced costs are
    /// `c_j − yᵀA_j`, non-negative for variables at lower bound at the
    /// optimum of a minimization.
    pub duals: Vec<f64>,
    /// Total simplex pivots performed.
    pub iterations: usize,
    /// Factorization/warm-start accounting for telemetry.
    pub stats: SolveStats,
}

/// Where a column currently rests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLb,
    /// Nonbasic at its upper bound.
    AtUb,
    /// Free nonbasic variable resting at 0.
    FreeZero,
}

/// A snapshot of the optimal simplex tableau, enough to derive Gomory
/// mixed-integer cuts (see [`crate::gomory`]): which column is basic in
/// each row, where every column rests, all column values, and the dense
/// basis inverse.
///
/// Column indexing: `0..n` structural variables, `n..n+m` slacks (one per
/// row, `+1` for `≤`/`=`, `−1` for `≥`), `n+m..n+2m` artificials (pinned
/// to zero at optimality).
#[derive(Clone, Debug)]
pub struct TableauView {
    /// Basic column of each row.
    pub basis: Vec<usize>,
    /// Rest state of every column.
    pub loc: Vec<Loc>,
    /// Value of every column.
    pub x: Vec<f64>,
    /// Lower bound of every column.
    pub lb: Vec<f64>,
    /// Upper bound of every column.
    pub ub: Vec<f64>,
    /// Row-major m×m basis inverse (materialized from the LU factors on
    /// the sparse backend).
    pub binv: Vec<f64>,
    /// Number of rows.
    pub m: usize,
    /// Number of structural columns.
    pub n_struct: usize,
}

/// Dense basis inverse — the historical engine, bit-for-bit the old
/// behavior: row-major `B⁻¹` updated with elementary row operations and
/// rebuilt by Gauss-Jordan on refactorization.
pub(crate) struct DenseBasis {
    m: usize,
    binv: Vec<f64>,
    refactorizations: u64,
}

impl DenseBasis {
    fn refactorize(&mut self, cols: &CscMatrix, basis: &[usize]) -> Result<(), ()> {
        let m = self.m;
        self.refactorizations += 1;
        // Dense basis matrix.
        let mut bmat = vec![0.0f64; m * m];
        for (c, &bj) in basis.iter().enumerate() {
            for (i, a) in cols.col(bj) {
                bmat[i * m + c] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting; the singularity
        // threshold scales with the matrix magnitude so well-scaled but
        // large-valued bases are not declared singular prematurely.
        let scale = bmat.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = bmat[col * m + col].abs();
            for r in col + 1..m {
                let v = bmat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-13 * scale {
                return Err(()); // singular basis: numerical trouble
            }
            if piv != col {
                for k in 0..m {
                    bmat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = bmat[col * m + col];
            for k in 0..m {
                bmat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = bmat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            bmat[r * m + k] -= f * bmat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        Ok(())
    }
}

/// The basis-representation switch shared by both simplex drivers.
pub(crate) enum Engine {
    Dense(DenseBasis),
    Sparse(Box<SparseBasis>),
}

impl Engine {
    /// Rebuild the representation of `B⁻¹` for the given basis.
    pub(crate) fn refactorize(&mut self, cols: &CscMatrix, basis: &[usize]) -> Result<(), ()> {
        match self {
            Engine::Dense(d) => d.refactorize(cols, basis),
            Engine::Sparse(s) => s.refactorize(cols, basis).map_err(|_| ()),
        }
    }

    /// `t = B⁻¹ A_j` for a column of the constraint matrix.
    pub(crate) fn ftran_col(&self, cols: &CscMatrix, j: usize) -> Vec<f64> {
        match self {
            Engine::Dense(d) => {
                let m = d.m;
                let mut t = vec![0.0f64; m];
                for (i, a) in cols.col(j) {
                    for r in 0..m {
                        t[r] += a * d.binv[r * m + i];
                    }
                }
                t
            }
            Engine::Sparse(s) => s.ftran_sparse(cols.col(j)),
        }
    }

    /// `B⁻¹ rhs` for a dense right-hand side (indexed by row); result is
    /// indexed by basis position.
    pub(crate) fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        match self {
            Engine::Dense(d) => {
                let m = d.m;
                let mut out = vec![0.0f64; m];
                for r in 0..m {
                    let mut v = 0.0;
                    for i in 0..m {
                        v += d.binv[r * m + i] * rhs[i];
                    }
                    out[r] = v;
                }
                out
            }
            Engine::Sparse(s) => s.ftran_dense(rhs),
        }
    }

    /// `y = Bᵀ⁻¹ c` for `c` indexed by basis position; result is indexed
    /// by row.
    pub(crate) fn btran(&self, c: &[f64]) -> Vec<f64> {
        match self {
            Engine::Dense(d) => {
                let m = d.m;
                let mut y = vec![0.0f64; m];
                for r in 0..m {
                    let cr = c[r];
                    if cr != 0.0 {
                        for i in 0..m {
                            y[i] += cr * d.binv[r * m + i];
                        }
                    }
                }
                y
            }
            Engine::Sparse(s) => s.btran(c),
        }
    }

    /// Row `r` of `B⁻¹` — the dual-simplex pricing vector.
    pub(crate) fn btran_unit(&self, r: usize) -> Vec<f64> {
        match self {
            Engine::Dense(d) => {
                let m = d.m;
                d.binv[r * m..(r + 1) * m].to_vec()
            }
            Engine::Sparse(s) => s.btran_unit(r),
        }
    }

    /// Fold the pivot (row `r`, FTRAN'd entering column `t`) into the
    /// representation. The caller has already guarded `|t[r]|`.
    pub(crate) fn update(&mut self, r: usize, t: &[f64]) {
        match self {
            Engine::Dense(d) => {
                let m = d.m;
                let tr = t[r];
                for k in 0..m {
                    d.binv[r * m + k] /= tr;
                }
                for rr in 0..m {
                    if rr != r && t[rr] != 0.0 {
                        let f = t[rr];
                        for k in 0..m {
                            d.binv[rr * m + k] -= f * d.binv[r * m + k];
                        }
                    }
                }
            }
            Engine::Sparse(s) => s.update(r, t),
        }
    }

    /// Materialize `B⁻¹` row-major for [`TableauView`].
    fn dense_binv(&self) -> Vec<f64> {
        match self {
            Engine::Dense(d) => d.binv.clone(),
            Engine::Sparse(s) => s.dense_binv(),
        }
    }

    fn refactorizations(&self) -> u64 {
        match self {
            Engine::Dense(d) => d.refactorizations,
            Engine::Sparse(s) => s.refactorizations,
        }
    }

    fn peak_eta_len(&self) -> u64 {
        match self {
            Engine::Dense(_) => 0,
            Engine::Sparse(s) => s.peak_eta_len,
        }
    }
}

pub(crate) struct Tableau {
    pub(crate) m: usize,
    /// structural + slack + artificial column count
    pub(crate) ncols: usize,
    pub(crate) n_struct: usize,
    pub(crate) art_start: usize,
    pub(crate) cols: CscMatrix,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) cost: Vec<f64>,
    pub(crate) b: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    pub(crate) loc: Vec<Loc>,
    pub(crate) x: Vec<f64>,
    pub(crate) engine: Engine,
    pub(crate) tol: f64,
    /// Stage clocks, present only when `SimplexConfig::collect_timing`.
    pub(crate) timers: Option<StageTimers>,
}

/// A tiny deterministic magnitude for the singular-recovery perturbation:
/// index-hashed so neighboring bounds move by different amounts (the
/// point is to break exact degeneracy), relative so large bounds are not
/// perturbed below their own rounding noise, and ~1e-9 so every
/// downstream tolerance (simplex `tol`, MIP integrality, metric-cut
/// violation) dwarfs it.
fn perturb_eps(seed: u64, index: usize, value: f64) -> f64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let frac = ((z >> 11) as f64) / ((1u64 << 53) as f64);
    1e-9 * (1.0 + value.abs()) * (0.5 + frac)
}

impl Tableau {
    /// Build the phase-1 tableau. With `perturb = Some(seed)`, every
    /// finite structural bound is widened and every inequality RHS
    /// loosened by a deterministic [`perturb_eps`] — the feasible set
    /// only grows, so a feasible model stays feasible and the optimum
    /// moves by at most O(1e-9) relative.
    fn build(
        model: &Model,
        tol: f64,
        perturb: Option<u64>,
        backend: ResolvedBackend,
        timing: bool,
    ) -> Tableau {
        let m = model.num_constrs();
        let n = model.num_vars();
        let ncols = n + m + m;
        let art_start = n + m;
        let mut lb = vec![0.0f64; ncols];
        let mut ub = vec![f64::INFINITY; ncols];
        for (j, v) in model.vars().iter().enumerate() {
            lb[j] = v.lb;
            ub[j] = v.ub;
            if let Some(seed) = perturb {
                if lb[j].is_finite() {
                    lb[j] -= perturb_eps(seed, 2 * j, lb[j]);
                }
                if ub[j].is_finite() {
                    ub[j] += perturb_eps(seed, 2 * j + 1, ub[j]);
                }
            }
        }
        let mut b = vec![0.0f64; m];
        let mut scols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut slack_sign = vec![1.0f64; m];
        for (i, c) in model.constrs().iter().enumerate() {
            b[i] = c.rhs;
            if let Some(seed) = perturb {
                let eps = perturb_eps(seed, 2 * (n + i), c.rhs);
                match c.sense {
                    Sense::Le => b[i] += eps,
                    Sense::Ge => b[i] -= eps,
                    Sense::Eq => {}
                }
            }
            for &(v, a) in &c.coeffs {
                scols[v.0].push((i, a));
            }
            match c.sense {
                Sense::Le => slack_sign[i] = 1.0,
                Sense::Ge => slack_sign[i] = -1.0,
                Sense::Eq => {
                    slack_sign[i] = 1.0;
                    ub[n + i] = 0.0;
                }
            }
        }
        let nnz_hint = scols.iter().map(Vec::len).sum::<usize>() + 2 * m;
        let mut cols = CscMatrix::with_capacity(m, ncols, nnz_hint);
        for sc in &scols {
            cols.push_col(sc.iter().copied());
        }
        for i in 0..m {
            cols.push_col([(i, slack_sign[i])]);
        }
        // Initial nonbasic point: each structural/slack at its finite bound
        // nearest zero, or zero if free.
        let mut x = vec![0.0f64; ncols];
        let mut loc = vec![Loc::AtLb; ncols];
        for j in 0..art_start {
            if lb[j].is_finite() {
                x[j] = lb[j];
                loc[j] = Loc::AtLb;
            } else if ub[j].is_finite() {
                x[j] = ub[j];
                loc[j] = Loc::AtUb;
            } else {
                x[j] = 0.0;
                loc[j] = Loc::FreeZero;
            }
        }
        // Residuals absorbed by artificials with ±1 coefficients.
        let mut resid = b.clone();
        for j in 0..art_start {
            if x[j] != 0.0 {
                for (i, a) in cols.col(j) {
                    resid[i] -= a * x[j];
                }
            }
        }
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            let aj = art_start + i;
            let sign = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
            cols.push_col([(i, sign)]);
            x[aj] = resid[i].abs();
            loc[aj] = Loc::Basic;
            basis.push(aj);
        }
        let engine = match backend {
            ResolvedBackend::Dense => {
                let mut binv = vec![0.0f64; m * m];
                for (i, &aj) in basis.iter().enumerate() {
                    let sign = cols.col(aj).next().map_or(1.0, |(_, s)| s);
                    binv[i * m + i] = sign;
                }
                Engine::Dense(DenseBasis {
                    m,
                    binv,
                    refactorizations: 0,
                })
            }
            ResolvedBackend::Sparse => {
                // The all-artificial basis is a ±1 diagonal: install its
                // factors directly instead of paying (and counting) a
                // factorization that a warm install would immediately
                // discard anyway.
                let mut s = SparseBasis::new(m);
                let signs: Vec<f64> = basis
                    .iter()
                    .map(|&aj| cols.col(aj).next().map_or(1.0, |(_, v)| v))
                    .collect();
                s.factor_signed_identity(&signs);
                Engine::Sparse(Box::new(s))
            }
        };
        Tableau {
            m,
            ncols,
            n_struct: n,
            art_start,
            cols,
            lb,
            ub,
            cost: vec![0.0; ncols],
            b,
            basis,
            loc,
            x,
            engine,
            tol,
            timers: timing.then(StageTimers::default),
        }
    }

    /// Read the clock iff stage timing is on.
    #[inline]
    pub(crate) fn clock(&self) -> Option<Instant> {
        self.timers.as_ref().map(|_| Instant::now())
    }

    #[inline]
    fn lap_factor(&self, t0: Option<Instant>) {
        if let (Some(t0), Some(tm)) = (t0, self.timers.as_ref()) {
            tm.factor_ns.set(tm.factor_ns.get() + elapsed_ns(t0));
        }
    }

    #[inline]
    fn lap_solve(&self, t0: Option<Instant>) {
        if let (Some(t0), Some(tm)) = (t0, self.timers.as_ref()) {
            tm.solve_ns.set(tm.solve_ns.get() + elapsed_ns(t0));
        }
    }

    #[inline]
    pub(crate) fn lap_price(&self, t0: Option<Instant>) {
        if let (Some(t0), Some(tm)) = (t0, self.timers.as_ref()) {
            tm.price_ns.set(tm.price_ns.get() + elapsed_ns(t0));
        }
    }

    /// Periodic-refactorization decision after a pivot: the dense engine
    /// keeps the historical pivot-count schedule (it refreshes the
    /// *inverse*, whose drift grows per update regardless of sparsity);
    /// the sparse engine asks its own eta-growth/fill-in accounting.
    #[inline]
    pub(crate) fn due_refactor(&self, iterations: usize, refactor_every: usize) -> bool {
        match &self.engine {
            Engine::Dense(_) => iterations.is_multiple_of(refactor_every),
            Engine::Sparse(s) => s.should_refactor(refactor_every),
        }
    }

    /// Post-optimal cleanup: refresh the basic values (and on drifted
    /// factors, the factorization) so `x` tightly agrees with the row
    /// system. With an empty eta file the sparse factors already *are*
    /// the fresh factorization of the current basis, so only the basic
    /// values need recomputing — skipping the factorization that made
    /// warm two-pivot solves pay cold prices.
    pub(crate) fn refresh_final(&mut self) -> Result<(), ()> {
        if let Engine::Sparse(s) = &self.engine {
            if s.eta_len() == 0 {
                let t0 = self.clock();
                self.recompute_basics();
                self.lap_solve(t0);
                return Ok(());
            }
        }
        self.refactorize()
    }

    /// `y = c_B B⁻¹`.
    pub(crate) fn duals(&self) -> Vec<f64> {
        let t0 = self.clock();
        let cb: Vec<f64> = self.basis.iter().map(|&bj| self.cost[bj]).collect();
        let y = self.engine.btran(&cb);
        self.lap_solve(t0);
        y
    }

    /// Row `r` of `B⁻¹` (the dual-simplex pricing vector), timed.
    pub(crate) fn btran_unit(&self, r: usize) -> Vec<f64> {
        let t0 = self.clock();
        let rho = self.engine.btran_unit(r);
        self.lap_solve(t0);
        rho
    }

    /// Reduced cost of column `j` given duals `y`.
    pub(crate) fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for (i, a) in self.cols.col(j) {
            d -= y[i] * a;
        }
        d
    }

    /// `t = B⁻¹ A_j`.
    pub(crate) fn ftran(&self, j: usize) -> Vec<f64> {
        let t0 = self.clock();
        let t = self.engine.ftran_col(&self.cols, j);
        self.lap_solve(t0);
        t
    }

    /// Rebuild the basis representation and basic values from scratch.
    pub(crate) fn refactorize(&mut self) -> Result<(), ()> {
        let t0 = self.clock();
        let r = self.engine.refactorize(&self.cols, &self.basis);
        self.lap_factor(t0);
        r?;
        let t0 = self.clock();
        self.recompute_basics();
        self.lap_solve(t0);
        Ok(())
    }

    /// Basic values `x_B = B⁻¹ (b − N x_N)`.
    pub(crate) fn recompute_basics(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.ncols {
            if self.loc[j] != Loc::Basic && self.x[j] != 0.0 {
                for (i, a) in self.cols.col(j) {
                    rhs[i] -= a * self.x[j];
                }
            }
        }
        let xb = self.engine.ftran_dense(&rhs);
        for (r, v) in xb.into_iter().enumerate() {
            self.x[self.basis[r]] = v;
        }
    }

    /// Install a [`WarmBasis`] captured from an earlier optimal solve of
    /// a compatible model (same structural columns; rows only appended;
    /// bounds may have changed). New rows get their logical column as the
    /// basic member, which keeps the reinstalled basis dual feasible.
    /// Fails — signalling the caller to fall back to a cold solve — on
    /// any shape mismatch or a singular reinstalled basis.
    pub(crate) fn install_warm(&mut self, warm: &WarmBasis) -> Result<(), ()> {
        let m = self.m;
        let n = self.n_struct;
        if warm.loc_struct.len() != n || warm.basis.len() != warm.loc_logical.len() {
            return Err(());
        }
        let cap_m = warm.basis.len();
        if cap_m > m {
            return Err(()); // rows were removed: the snapshot is stale
        }
        let mut basis = Vec::with_capacity(m);
        for wc in &warm.basis {
            let j = match *wc {
                WarmCol::Struct(j) if j < n => j,
                WarmCol::Logical(i) if i < m => n + i,
                WarmCol::Artificial(i) if i < m => self.art_start + i,
                _ => return Err(()),
            };
            basis.push(j);
        }
        for i in cap_m..m {
            basis.push(n + i);
        }
        let mut seen = vec![false; self.ncols];
        for &j in &basis {
            if seen[j] {
                return Err(());
            }
            seen[j] = true;
        }
        // Rest states: start from the snapshot where it applies, fixing
        // any rest spot the current bounds no longer admit.
        for j in 0..self.ncols {
            let wanted = if j < n {
                warm.loc_struct[j]
            } else if j < n + cap_m {
                warm.loc_logical[j - n]
            } else {
                // Logicals of appended rows (unless made basic below)
                // and artificials both rest at zero / their lower bound.
                Loc::AtLb
            };
            self.loc[j] = match wanted {
                Loc::AtLb if self.lb[j].is_finite() => Loc::AtLb,
                Loc::AtUb if self.ub[j].is_finite() => Loc::AtUb,
                Loc::Basic | Loc::AtLb | Loc::AtUb | Loc::FreeZero => {
                    if self.lb[j].is_finite() {
                        Loc::AtLb
                    } else if self.ub[j].is_finite() {
                        Loc::AtUb
                    } else {
                        Loc::FreeZero
                    }
                }
            };
        }
        for &j in &basis {
            self.loc[j] = Loc::Basic;
        }
        self.basis = basis;
        for j in 0..self.ncols {
            if self.loc[j] != Loc::Basic {
                self.x[j] = match self.loc[j] {
                    Loc::AtLb => self.lb[j],
                    Loc::AtUb => self.ub[j],
                    _ => 0.0,
                };
            }
        }
        let t0 = self.clock();
        let r = self.engine.refactorize(&self.cols, &self.basis);
        self.lap_factor(t0);
        r?;
        let t0 = self.clock();
        self.recompute_basics();
        self.lap_solve(t0);
        Ok(())
    }

    /// Snapshot the current (optimal) basis for later warm starts.
    pub(crate) fn capture_warm(&self) -> WarmBasis {
        let n = self.n_struct;
        let basis = self
            .basis
            .iter()
            .map(|&j| {
                if j < n {
                    WarmCol::Struct(j)
                } else if j < self.art_start {
                    WarmCol::Logical(j - n)
                } else {
                    WarmCol::Artificial(j - self.art_start)
                }
            })
            .collect();
        WarmBasis {
            basis,
            loc_struct: self.loc[..n].to_vec(),
            loc_logical: self.loc[n..self.art_start].to_vec(),
        }
    }

    /// Are the current reduced costs dual feasible for the current rest
    /// states? Used to certify an `Infeasible` verdict from the dual
    /// simplex before trusting it without a phase-1 proof.
    pub(crate) fn dual_feasible(&self) -> bool {
        let y = self.duals();
        let tol = self.tol * 10.0;
        for j in 0..self.ncols {
            if self.loc[j] == Loc::Basic || self.ub[j] - self.lb[j] <= self.tol {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            let ok = match self.loc[j] {
                Loc::AtLb => d >= -tol,
                Loc::AtUb => d <= tol,
                Loc::FreeZero => d.abs() <= tol,
                Loc::Basic => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// One phase of the simplex. Returns the status reached. With
    /// `start_bland`, Bland's rule is used from the first pivot (the last
    /// rung of the singular-recovery ladder) instead of only after a
    /// degenerate run.
    fn optimize(
        &mut self,
        max_iters: usize,
        iterations: &mut usize,
        refactor: usize,
        start_bland: bool,
    ) -> LpStatus {
        let mut degenerate_run = 0usize;
        let mut bland = start_bland;
        loop {
            if *iterations >= max_iters {
                return LpStatus::IterationLimit;
            }
            let y = self.duals();
            // --- pricing ---------------------------------------------------
            let p0 = self.clock();
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, dir)
            for j in 0..self.ncols {
                if self.loc[j] == Loc::Basic {
                    continue;
                }
                // Fixed columns (lb == ub) can never improve.
                if self.ub[j] - self.lb[j] <= self.tol {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let dir = match self.loc[j] {
                    Loc::AtLb if d < -self.tol => 1.0,
                    Loc::AtUb if d > self.tol => -1.0,
                    Loc::FreeZero if d < -self.tol => 1.0,
                    Loc::FreeZero if d > self.tol => -1.0,
                    _ => continue,
                };
                if bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                if entering.is_none_or(|(_, best, _)| d.abs() > best) {
                    entering = Some((j, d.abs(), dir));
                }
            }
            self.lap_price(p0);
            let Some((j, _, dir)) = entering else {
                return LpStatus::Optimal;
            };
            *iterations += 1;

            // --- ratio test -------------------------------------------------
            let t = self.ftran(j);
            // Moving x_j by `dir·Δ` changes basic r by `-dir·t_r·Δ`.
            let span = self.ub[j] - self.lb[j]; // may be ∞
            let mut limit = span;
            let mut leaving: Option<(usize, Loc)> = None; // (row, bound hit)
            for r in 0..self.m {
                let rate = -dir * t[r];
                if rate.abs() <= 1e-10 {
                    continue;
                }
                let bj = self.basis[r];
                let room = if rate > 0.0 {
                    // basic value increases toward its upper bound
                    if self.ub[bj].is_infinite() {
                        continue;
                    }
                    (self.ub[bj] - self.x[bj]) / rate
                } else {
                    if self.lb[bj].is_infinite() {
                        continue;
                    }
                    (self.lb[bj] - self.x[bj]) / rate
                };
                let room = room.max(0.0);
                // Bland's anti-cycling rule needs the smallest-index
                // leaving variable among ties, not the first row seen.
                let better = room < limit - 1e-12
                    || (bland
                        && (room - limit).abs() <= 1e-12
                        && leaving.is_some_and(|(lr, _)| bj < self.basis[lr]));
                if better {
                    limit = room;
                    leaving = Some((r, if rate > 0.0 { Loc::AtUb } else { Loc::AtLb }));
                }
            }
            if limit.is_infinite() {
                return LpStatus::Unbounded;
            }
            if limit <= self.tol {
                degenerate_run += 1;
                if degenerate_run > 40 + self.m {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }

            // --- update -----------------------------------------------------
            let delta = dir * limit;
            for r in 0..self.m {
                let bj = self.basis[r];
                self.x[bj] -= t[r] * delta;
            }
            self.x[j] += delta;
            match leaving {
                None => {
                    // Bound flip: j moves to its opposite bound.
                    self.loc[j] = if dir > 0.0 { Loc::AtUb } else { Loc::AtLb };
                    // Snap exactly to the bound to kill drift.
                    self.x[j] = if dir > 0.0 { self.ub[j] } else { self.lb[j] };
                }
                Some((r, bound)) => {
                    let out = self.basis[r];
                    self.loc[out] = bound;
                    self.x[out] = match bound {
                        Loc::AtUb => self.ub[out],
                        _ => self.lb[out],
                    };
                    self.loc[j] = Loc::Basic;
                    self.basis[r] = j;
                    if t[r].abs() < 1e-11 {
                        // Numerically unsafe pivot: rebuild everything.
                        if self.refactorize().is_err() {
                            return LpStatus::NumericalFailure;
                        }
                        continue;
                    }
                    self.engine.update(r, &t);
                }
            }
            if self.due_refactor(*iterations, refactor) && self.refactorize().is_err() {
                return LpStatus::NumericalFailure;
            }
        }
    }

    fn phase1_objective(&self) -> f64 {
        (self.art_start..self.ncols).map(|j| self.x[j].abs()).sum()
    }

    /// Set phase-2 costs (the model objective) and pin the artificials
    /// at zero.
    fn enter_phase2(&mut self, model: &Model) {
        for j in 0..self.ncols {
            self.cost[j] = if j < self.n_struct {
                model.var(crate::model::VarId(j)).obj
            } else {
                0.0
            };
        }
        for j in self.art_start..self.ncols {
            self.ub[j] = 0.0;
            if self.loc[j] != Loc::Basic {
                self.x[j] = 0.0;
                self.loc[j] = Loc::AtLb;
            }
        }
    }

    fn view(&self) -> TableauView {
        TableauView {
            basis: self.basis.clone(),
            loc: self.loc.clone(),
            x: self.x.clone(),
            lb: self.lb.clone(),
            ub: self.ub.clone(),
            binv: self.engine.dense_binv(),
            m: self.m,
            n_struct: self.n_struct,
        }
    }
}

/// Automatic iteration cap when `max_iterations` is 0.
fn iter_cap(config: &SimplexConfig, t: &Tableau) -> usize {
    if config.max_iterations > 0 {
        config.max_iterations
    } else {
        200 * (t.m + t.n_struct) + 20_000
    }
}

fn extract(
    model: &Model,
    t: &Tableau,
    status: LpStatus,
    iterations: usize,
    warm: bool,
) -> LpSolution {
    LpSolution {
        status,
        objective: model.objective_value(&t.x[..t.n_struct]),
        x: t.x[..t.n_struct].to_vec(),
        duals: t.duals(),
        iterations,
        stats: SolveStats {
            warm,
            warm_pivots: if warm { iterations as u64 } else { 0 },
            refactorizations: t.engine.refactorizations(),
            peak_eta_len: t.engine.peak_eta_len(),
            factor_us: t.timers.as_ref().map_or(0, |tm| tm.factor_ns.get() / 1_000),
            ftran_btran_us: t.timers.as_ref().map_or(0, |tm| tm.solve_ns.get() / 1_000),
            pricing_us: t.timers.as_ref().map_or(0, |tm| tm.price_ns.get() / 1_000),
        },
    }
}

/// The result of a warm-capable solve: the solution plus (on optimal
/// solves) the tableau snapshot for cut generation and the basis snapshot
/// for the next warm start.
#[derive(Clone, Debug)]
pub struct LpOutcome {
    /// The solution itself.
    pub solution: LpSolution,
    /// Optimal-tableau snapshot, if requested and optimal.
    pub view: Option<TableauView>,
    /// Basis snapshot for warm-starting the next solve (sparse backend,
    /// optimal solves only).
    pub basis: Option<WarmBasis>,
}

/// Solve the LP relaxation of `model` (integrality is ignored here; see
/// [`crate::milp::solve_mip`] for the integer solver).
pub fn solve_lp(model: &Model, config: &SimplexConfig) -> LpSolution {
    solve_lp_warm_chaos(model, config, None, false, np_chaos::global()).solution
}

/// Like [`solve_lp`] but also returns the optimal tableau snapshot (only
/// when the status is `Optimal`), for cut generation.
///
/// Singular-basis recovery: when a factorization fails mid-solve (or an
/// injected `lp-singular` fault pretends it did), the solve is retried
/// with deterministically perturbed bounds to break the degeneracy, then
/// with Bland's rule from the first pivot on the exact problem. Only if
/// every rung fails is [`LpStatus::NumericalFailure`] reported.
pub fn solve_lp_tableau(
    model: &Model,
    config: &SimplexConfig,
) -> (LpSolution, Option<TableauView>) {
    solve_lp_tableau_chaos(model, config, np_chaos::global())
}

/// [`solve_lp_tableau`] with an explicit fault-injection handle, so
/// tests can force singular bases without touching the process-wide
/// chaos plan.
pub fn solve_lp_tableau_chaos(
    model: &Model,
    config: &SimplexConfig,
    chaos: &np_chaos::Chaos,
) -> (LpSolution, Option<TableauView>) {
    let out = solve_lp_warm_chaos(model, config, None, true, chaos);
    (out.solution, out.view)
}

/// Warm-capable LP solve: on the sparse backend, a supplied basis
/// snapshot is reinstalled and re-optimized with the dual simplex; any
/// warm-path failure (shape mismatch, singular reinstall, iteration cap,
/// uncertified infeasibility) falls back to the cold two-phase ladder.
/// The dense backend always solves cold. The returned outcome carries the
/// next warm-start snapshot on optimal sparse solves.
pub fn solve_lp_warm(model: &Model, config: &SimplexConfig, warm: Option<&WarmBasis>) -> LpOutcome {
    solve_lp_warm_chaos(model, config, warm, false, np_chaos::global())
}

/// [`solve_lp_warm`] with a tableau-view request and an explicit chaos
/// handle — the full-control entry point the MILP and Benders layers use.
pub fn solve_lp_warm_chaos(
    model: &Model,
    config: &SimplexConfig,
    warm: Option<&WarmBasis>,
    want_view: bool,
    chaos: &np_chaos::Chaos,
) -> LpOutcome {
    let backend = config.backend.resolved();
    if backend == ResolvedBackend::Sparse {
        if let Some(wb) = warm {
            if let Some(out) = warm_attempt(model, config, wb, want_view, chaos) {
                return out;
            }
        }
    }
    // Cold ladder.
    let (solution, view, basis) = if !chaos.should_fire(np_chaos::FaultClass::LpSingular) {
        let r = solve_attempt(model, config, None, false, want_view, backend);
        if r.0.status != LpStatus::NumericalFailure {
            r
        } else {
            cold_recovery(model, config, want_view, backend)
        }
    } else {
        cold_recovery(model, config, want_view, backend)
    };
    LpOutcome {
        solution,
        view,
        basis,
    }
}

/// The perturbation → Bland recovery rungs shared by real singular bases
/// and injected `lp-singular` faults.
fn cold_recovery(
    model: &Model,
    config: &SimplexConfig,
    want_view: bool,
    backend: ResolvedBackend,
) -> (LpSolution, Option<TableauView>, Option<WarmBasis>) {
    let r = solve_attempt(model, config, Some(0x5eed_cafe), false, want_view, backend);
    if r.0.status != LpStatus::NumericalFailure {
        return r;
    }
    solve_attempt(model, config, None, true, want_view, backend)
}

/// One rung of the recovery ladder: a full two-phase solve, optionally
/// on perturbed bounds and/or with Bland's rule throughout.
fn solve_attempt(
    model: &Model,
    config: &SimplexConfig,
    perturb: Option<u64>,
    bland: bool,
    want_view: bool,
    backend: ResolvedBackend,
) -> (LpSolution, Option<TableauView>, Option<WarmBasis>) {
    let mut t = Tableau::build(model, config.tol, perturb, backend, config.collect_timing);
    let max_iters = iter_cap(config, &t);
    let mut iterations = 0usize;

    // Phase 1: minimize the artificial mass.
    for j in t.art_start..t.ncols {
        t.cost[j] = 1.0;
    }
    let s1 = t.optimize(max_iters, &mut iterations, config.refactor_every, bland);
    if s1 == LpStatus::IterationLimit || s1 == LpStatus::NumericalFailure {
        return (extract(model, &t, s1, iterations, false), None, None);
    }
    if t.phase1_objective() > config.tol * 10.0 {
        return (
            extract(model, &t, LpStatus::Infeasible, iterations, false),
            None,
            None,
        );
    }
    // Phase 2: real costs; artificials pinned at zero.
    t.enter_phase2(model);
    let s2 = t.optimize(max_iters, &mut iterations, config.refactor_every, bland);
    // Final cleanup for tight agreement between x and the row system.
    if s2 == LpStatus::Optimal {
        let _ = t.refresh_final();
    }
    let view = (s2 == LpStatus::Optimal && want_view).then(|| t.view());
    // Only unperturbed optimal bases are worth snapshotting: a perturbed
    // basis is optimal for slightly different bounds, and the warm path
    // re-verifies optimality anyway, but there is no point seeding it
    // from a recovery rung.
    let basis =
        (s2 == LpStatus::Optimal && perturb.is_none() && matches!(t.engine, Engine::Sparse(_)))
            .then(|| t.capture_warm());
    (extract(model, &t, s2, iterations, false), view, basis)
}

/// The warm path: reinstall the snapshot, restore primal feasibility with
/// the dual simplex, then finish with primal phase 2. Returns `None`
/// whenever the cold ladder should take over instead.
fn warm_attempt(
    model: &Model,
    config: &SimplexConfig,
    warm: &WarmBasis,
    want_view: bool,
    chaos: &np_chaos::Chaos,
) -> Option<LpOutcome> {
    // An injected singular fault hits the reinstall factorization first.
    if chaos.should_fire(np_chaos::FaultClass::LpSingular) {
        return None;
    }
    let mut t = Tableau::build(
        model,
        config.tol,
        None,
        ResolvedBackend::Sparse,
        config.collect_timing,
    );
    t.enter_phase2(model);
    t.install_warm(warm).ok()?;
    let max_iters = iter_cap(config, &t);
    // The dual restore is expected to take a handful of pivots; if it
    // drags on, the cold solve is the better use of the budget.
    let dual_cap = max_iters.min(20 * (t.m + t.n_struct) + 500);
    let mut iterations = 0usize;
    match crate::dual::restore_feasibility(&mut t, dual_cap, &mut iterations, config.refactor_every)
    {
        crate::dual::DualStatus::PrimalFeasible => {}
        crate::dual::DualStatus::Infeasible => {
            // The dual simplex proves infeasibility only under dual
            // feasibility; certify before trusting the verdict.
            if t.dual_feasible() {
                return Some(LpOutcome {
                    solution: extract(model, &t, LpStatus::Infeasible, iterations, true),
                    view: None,
                    basis: None,
                });
            }
            return None;
        }
        _ => return None,
    }
    // Primal cleanup: usually zero pivots, but bound changes can leave
    // residual dual infeasibility (e.g. rest states repaired on install).
    let s2 = t.optimize(max_iters, &mut iterations, config.refactor_every, false);
    if s2 == LpStatus::Optimal {
        let _ = t.refresh_final();
    }
    match s2 {
        LpStatus::Optimal => Some(LpOutcome {
            solution: extract(model, &t, s2, iterations, true),
            view: want_view.then(|| t.view()),
            basis: Some(t.capture_warm()),
        }),
        LpStatus::Unbounded => Some(LpOutcome {
            solution: extract(model, &t, s2, iterations, true),
            view: None,
            basis: None,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn cfg() -> SimplexConfig {
        SimplexConfig::default()
    }

    fn cfg_on(backend: LpBackend) -> SimplexConfig {
        SimplexConfig {
            backend,
            ..SimplexConfig::default()
        }
    }

    fn both_backends() -> [SimplexConfig; 2] {
        [cfg_on(LpBackend::Dense), cfg_on(LpBackend::Sparse)]
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (≡ min −3x −5y)
        // Optimum (2, 6) with objective −36.
        let mut m = Model::new("wyndor");
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0, false);
        m.add_constr("c1", vec![(x, 1.0)], Sense::Le, 4.0);
        m.add_constr("c2", vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constr("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective + 36.0).abs() < 1e-6);
            assert!((s.x[0] - 2.0).abs() < 1e-6);
            assert!((s.x[1] - 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 → (8, 2), obj 12.
        let mut m = Model::new("eq");
        let x = m.add_var("x", 3.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 2.0, f64::INFINITY, 2.0, false);
        m.add_constr("sum", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective - 12.0).abs() < 1e-6);
            assert!((s.x[0] - 8.0).abs() < 1e-6);
        }
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("inf");
        let x = m.add_var("x", 0.0, 1.0, 0.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 2.0);
        for c in both_backends() {
            assert_eq!(solve_lp(&m, &c).status, LpStatus::Infeasible);
        }
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new("unb");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        m.add_constr("c", vec![(x, -1.0)], Sense::Le, 5.0);
        for c in both_backends() {
            assert_eq!(solve_lp(&m, &c).status, LpStatus::Unbounded);
        }
    }

    #[test]
    fn upper_bounds_without_rows() {
        // min −x − y, x ≤ 3, y ≤ 4 with no constraints: hits the box corner.
        let mut m = Model::new("box");
        m.add_var("x", 0.0, 3.0, -1.0, false);
        m.add_var("y", 0.0, 4.0, -1.0, false);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective + 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn free_variables() {
        // min x s.t. x >= -5 via row (x itself free): optimum −5.
        let mut m = Model::new("free");
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, -5.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.x[0] + 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn negative_rhs_rows() {
        // min y s.t. −x − y ≤ −4, x ≤ 3 → y ≥ 4 − x ≥ 1.
        let mut m = Model::new("negrhs");
        let x = m.add_var("x", 0.0, 3.0, 0.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constr("c", vec![(x, -1.0), (y, -1.0)], Sense::Le, -4.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.objective - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant rows through the optimum.
        let m = degenerate_model();
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            // Optimum x=1,y=0 (binding c1) gives −1.
            assert!(m.is_feasible(&s.x, 1e-6));
            assert!(s.objective <= -1.0 + 1e-6);
        }
    }

    /// The degenerate instance shared by the recovery tests: many
    /// redundant rows through the optimum (x=1, y=0, objective −1).
    fn degenerate_model() -> Model {
        let mut m = Model::new("degen");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, -1.0, false);
        for k in 1..=6 {
            m.add_constr(
                format!("c{k}"),
                vec![(x, 1.0), (y, f64::from(k))],
                Sense::Le,
                f64::from(k),
            );
        }
        m
    }

    #[test]
    fn injected_singular_basis_recovers_via_perturbation() {
        use np_chaos::{Chaos, FaultClass, FaultPlan};
        for c in both_backends() {
            let m = degenerate_model();
            let clean = solve_lp(&m, &c);
            assert_eq!(clean.status, LpStatus::Optimal);
            // The chaos plan declares the first solve attempt singular; the
            // perturbed retry must land on the same optimum.
            let chaos = Chaos::new(FaultPlan::parse("lp-singular@0").unwrap());
            let (sol, view) = solve_lp_tableau_chaos(&m, &c, &chaos);
            assert_eq!(chaos.fired(FaultClass::LpSingular), 1);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert!(
                (sol.objective - clean.objective).abs() < 1e-6,
                "perturbed recovery drifted: {} vs {}",
                sol.objective,
                clean.objective
            );
            assert!(view.is_some(), "recovered solves still produce a tableau");
        }
    }

    #[test]
    fn bland_fallback_solves_the_degenerate_lp_exactly() {
        // The last rung of the ladder — Bland's rule from the first
        // pivot on the unperturbed problem — must terminate on the
        // degenerate instance and agree with the Dantzig solve.
        let m = degenerate_model();
        for c in both_backends() {
            let clean = solve_lp(&m, &c);
            let (bland, _, _) = solve_attempt(&m, &c, None, true, false, c.backend.resolved());
            assert_eq!(bland.status, LpStatus::Optimal);
            assert!(
                (bland.objective - clean.objective).abs() < 1e-9,
                "Bland fallback drifted: {} vs {}",
                bland.objective,
                clean.objective
            );
        }
    }

    #[test]
    fn perturbed_attempt_stays_within_tolerance_everywhere() {
        // Perturbation only widens the feasible set, so the perturbed
        // optimum can only improve, and by a hair.
        let mut wyndor = Model::new("wyndor");
        let x = wyndor.add_var("x", 0.0, f64::INFINITY, -3.0, false);
        let y = wyndor.add_var("y", 0.0, f64::INFINITY, -5.0, false);
        wyndor.add_constr("c1", vec![(x, 1.0)], Sense::Le, 4.0);
        wyndor.add_constr("c2", vec![(y, 2.0)], Sense::Le, 12.0);
        wyndor.add_constr("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        for (name, m) in [("degen", degenerate_model()), ("wyndor", wyndor)] {
            for c in both_backends() {
                let clean = solve_lp(&m, &c);
                let (pert, _, _) = solve_attempt(
                    &m,
                    &c,
                    Some(0x5eed_cafe),
                    false,
                    false,
                    c.backend.resolved(),
                );
                assert_eq!(pert.status, LpStatus::Optimal, "{name}");
                assert!(
                    pert.objective <= clean.objective + 1e-9,
                    "{name}: widening must not worsen the optimum"
                );
                assert!(
                    (pert.objective - clean.objective).abs() < 1e-6,
                    "{name}: perturbation moved the objective too far: {} vs {}",
                    pert.objective,
                    clean.objective
                );
            }
        }
    }

    #[test]
    fn duals_price_binding_rows() {
        // min −x, x ≤ 4 (row): y = −1 prices the row; reduced costs ≥ 0.
        let mut m = Model::new("dual");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        m.add_constr("cap", vec![(x, 1.0)], Sense::Le, 4.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.duals[0] + 1.0).abs() < 1e-6, "dual = {}", s.duals[0]);
        }
    }

    #[test]
    fn transportation_problem() {
        // 2 plants (cap 20, 30) → 3 markets (demand 10, 25, 15),
        // costs rows: [8,6,10],[9,12,13]. Known optimum 395:
        // plant1 → m2 (20 @6) ... verify against brute LP structure.
        let mut m = Model::new("transport");
        let costs = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let caps = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        let mut v = vec![];
        for (p, row) in costs.iter().enumerate() {
            for (mk, &c) in row.iter().enumerate() {
                v.push(m.add_var(format!("x{p}{mk}"), 0.0, f64::INFINITY, c, false));
            }
        }
        for (p, &cap) in caps.iter().enumerate() {
            m.add_constr(
                format!("cap{p}"),
                (0..3).map(|mk| (v[p * 3 + mk], 1.0)).collect(),
                Sense::Le,
                cap,
            );
        }
        for (mk, &d) in demands.iter().enumerate() {
            m.add_constr(
                format!("dem{mk}"),
                (0..2).map(|p| (v[p * 3 + mk], 1.0)).collect(),
                Sense::Ge,
                d,
            );
        }
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!(m.is_feasible(&s.x, 1e-6));
            // Optimal: p0→m2:5? Let's check the known LP optimum by weak
            // duality against a hand-computed feasible dual bound.
            // Feasible primal: p0: m1=20; p1: m0=10, m1=5, m2=15 →
            // 6·20 + 9·10 + 12·5 + 13·15 = 465. Solver must do at least
            // as well, and no better than 6 per unit · 50 = 300.
            assert!(s.objective <= 465.0 + 1e-6);
            assert!(s.objective >= 300.0);
        }
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        let mut m = Model::new("fixed");
        let x = m.add_var("x", 2.0, 2.0, -10.0, false);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!((s.x[0] - 2.0).abs() < 1e-9);
            assert!((s.x[1] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        for c in both_backends() {
            let s = solve_lp(&Model::new("empty"), &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert_eq!(s.objective, 0.0);
        }
    }

    #[test]
    fn larger_random_lp_satisfies_kkt_spotchecks() {
        // A 30×60 random-but-seeded LP: verify feasibility and that the
        // objective is not improvable along any single coordinate
        // (first-order stationarity on the box).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Model::new("rand");
        let mut vars = Vec::new();
        for j in 0..60 {
            let ub = rng.gen_range(1.0..5.0);
            let obj = rng.gen_range(-2.0..2.0);
            vars.push(m.add_var(format!("x{j}"), 0.0, ub, obj, false));
        }
        for i in 0..30 {
            let mut coeffs = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.3) {
                    coeffs.push((v, rng.gen_range(0.1..1.0)));
                }
            }
            if coeffs.is_empty() {
                continue;
            }
            let worth: f64 = coeffs.iter().map(|&(_, c)| c).sum();
            m.add_constr(format!("r{i}"), coeffs, Sense::Le, worth * 2.0);
        }
        for c in both_backends() {
            let s = solve_lp(&m, &c);
            assert_eq!(s.status, LpStatus::Optimal);
            assert!(m.is_feasible(&s.x, 1e-5));
        }
    }

    #[test]
    fn warm_start_after_bound_change_matches_cold() {
        // Solve, tighten a bound (a B&B branch), re-solve warm: the warm
        // answer must match a cold solve of the changed model exactly in
        // status and to tight tolerance in objective.
        let mut m = Model::new("warm");
        let x = m.add_var("x", 0.0, 4.0, -3.0, false);
        let y = m.add_var("y", 0.0, 6.0, -5.0, false);
        m.add_constr("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let c = cfg_on(LpBackend::Sparse);
        let first = solve_lp_warm(&m, &c, None);
        assert_eq!(first.solution.status, LpStatus::Optimal);
        let wb = first.basis.expect("sparse optimal solves snapshot a basis");
        m.set_bounds(x, 0.0, 1.0); // branch: x ≤ 1
        let warm = solve_lp_warm(&m, &c, Some(&wb));
        assert!(warm.solution.stats.warm, "bound change should warm-start");
        let cold = solve_lp(&m, &c);
        assert_eq!(warm.solution.status, cold.status);
        assert!(
            (warm.solution.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
    }

    #[test]
    fn warm_start_proves_infeasibility_with_certificate() {
        // Branch to an empty box: the warm dual simplex must report
        // Infeasible (certified) or fall back — never claim optimality.
        let mut m = Model::new("warminf");
        let x = m.add_var("x", 0.0, 5.0, 1.0, false);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_constr("sum", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 8.0);
        let c = cfg_on(LpBackend::Sparse);
        let first = solve_lp_warm(&m, &c, None);
        assert_eq!(first.solution.status, LpStatus::Optimal);
        let wb = first.basis.unwrap();
        m.set_bounds(x, 0.0, 1.0);
        m.set_bounds(y, 0.0, 1.0); // x + y ≤ 2 < 8: infeasible
        let warm = solve_lp_warm(&m, &c, Some(&wb));
        assert_eq!(warm.solution.status, LpStatus::Infeasible);
        let cold = solve_lp(&m, &c);
        assert_eq!(cold.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_after_appended_rows_matches_cold() {
        // The Benders pattern: cuts arrive as new Ge rows; the warm
        // re-solve from the pre-cut basis must agree with a cold solve.
        let mut m = Model::new("warmcut");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 2.0, false);
        m.add_constr("base", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 2.0);
        let c = cfg_on(LpBackend::Sparse);
        let mut out = solve_lp_warm(&m, &c, None);
        assert_eq!(out.solution.status, LpStatus::Optimal);
        for k in 0..4 {
            m.add_constr(
                format!("cut{k}"),
                vec![(x, 1.0), (y, 0.5)],
                Sense::Ge,
                3.0 + f64::from(k),
            );
            let wb = out.basis.expect("optimal sparse solve keeps a basis");
            out = solve_lp_warm(&m, &c, Some(&wb));
            assert_eq!(out.solution.status, LpStatus::Optimal, "round {k}");
            assert!(out.solution.stats.warm, "round {k} should warm-start");
            let cold = solve_lp(&m, &c);
            assert!(
                (out.solution.objective - cold.objective).abs() < 1e-9,
                "round {k}: warm {} vs cold {}",
                out.solution.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn warm_start_with_mismatched_shape_falls_back_cold() {
        let mut m = Model::new("shape");
        let x = m.add_var("x", 0.0, 5.0, -1.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Le, 4.0);
        let c = cfg_on(LpBackend::Sparse);
        let first = solve_lp_warm(&m, &c, None);
        let wb = first.basis.unwrap();
        // A different model with more structural variables.
        let mut m2 = Model::new("shape2");
        let a = m2.add_var("a", 0.0, 5.0, -1.0, false);
        m2.add_var("b", 0.0, 5.0, -1.0, false);
        m2.add_constr("c", vec![(a, 1.0)], Sense::Le, 4.0);
        let out = solve_lp_warm(&m2, &c, Some(&wb));
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert!(!out.solution.stats.warm, "shape mismatch must solve cold");
    }

    #[test]
    fn sparse_stats_count_factorizations() {
        let m = degenerate_model();
        let s = solve_lp(&m, &cfg_on(LpBackend::Sparse));
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.stats.refactorizations >= 1);
        assert!(!s.stats.warm);
        let d = solve_lp(&m, &cfg_on(LpBackend::Dense));
        assert_eq!(d.stats.peak_eta_len, 0, "dense engine has no eta file");
    }

    #[test]
    fn default_config_uses_the_sparse_engine() {
        // Guard the default: unless NP_LP_BACKEND=dense is exported, Auto
        // must resolve to the sparse engine (the CI matrix sets the env).
        let want = LpBackend::Auto.resolved();
        let m = degenerate_model();
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        match want {
            ResolvedBackend::Sparse => assert!(s.stats.refactorizations >= 1),
            ResolvedBackend::Dense => assert_eq!(s.stats.peak_eta_len, 0),
        }
    }
}
