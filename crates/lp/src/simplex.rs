//! Bounded-variable two-phase primal simplex with an explicit dense basis
//! inverse.
//!
//! The implementation follows the classic textbook method (Chvátal ch. 8,
//! bounded variables):
//!
//! 1. every row gets a slack column (`≤` → `+s`, `≥` → `−s`, `=` → a
//!    fixed slack), turning the system into `Ax = b` with box bounds;
//! 2. **phase 1** starts from an all-artificial basis absorbing the
//!    residual of the initial point and minimizes the sum of artificial
//!    values; a positive optimum proves infeasibility;
//! 3. **phase 2** minimizes the real objective with the artificials
//!    pinned to zero.
//!
//! Pricing is Dantzig (most-negative reduced cost) with an automatic
//! switch to Bland's rule after a run of degenerate pivots, which
//! guarantees termination. The basis inverse is updated with elementary
//! row operations each pivot and refactorized from scratch periodically
//! to keep numerical drift bounded.

// Index loops here run over rows/columns of the dense basis inverse with
// strided `r * m + i` addressing; enumerate-based rewrites obscure the
// linear algebra without changing the generated code.
#![allow(clippy::needless_range_loop)]

use crate::model::{Model, Sense};

/// Outcome of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists (phase-1 optimum is positive).
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
    /// Iteration limit hit before convergence.
    IterationLimit,
    /// The basis factorization failed (singular basis) even after the
    /// recovery ladder — bound perturbation, then Bland's rule from the
    /// first pivot. Callers must treat the solution as unknown (like
    /// `IterationLimit`), never as a feasibility verdict.
    NumericalFailure,
}

/// Solver tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimplexConfig {
    /// Hard cap on pivots across both phases; 0 means automatic
    /// (`200·(m+n) + 20_000`).
    pub max_iterations: usize,
    /// Feasibility / optimality tolerance.
    pub tol: f64,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            max_iterations: 0,
            tol: 1e-7,
            refactor_every: 64,
        }
    }
}

/// An LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Final status; `x`/`objective` are meaningful for `Optimal` (and
    /// best-effort for `IterationLimit`).
    pub status: LpStatus,
    /// Objective value of `x`.
    pub objective: f64,
    /// Values of the *structural* variables, indexed like `model.vars()`.
    pub x: Vec<f64>,
    /// Row duals `y = c_B B⁻¹` at termination, indexed like
    /// `model.constrs()`. Sign convention: reduced costs are
    /// `c_j − yᵀA_j`, non-negative for variables at lower bound at the
    /// optimum of a minimization.
    pub duals: Vec<f64>,
    /// Total simplex pivots performed.
    pub iterations: usize,
}

/// Where a column currently rests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLb,
    /// Nonbasic at its upper bound.
    AtUb,
    /// Free nonbasic variable resting at 0.
    FreeZero,
}

/// A snapshot of the optimal simplex tableau, enough to derive Gomory
/// mixed-integer cuts (see [`crate::gomory`]): which column is basic in
/// each row, where every column rests, all column values, and the dense
/// basis inverse.
///
/// Column indexing: `0..n` structural variables, `n..n+m` slacks (one per
/// row, `+1` for `≤`/`=`, `−1` for `≥`), `n+m..n+2m` artificials (pinned
/// to zero at optimality).
#[derive(Clone, Debug)]
pub struct TableauView {
    /// Basic column of each row.
    pub basis: Vec<usize>,
    /// Rest state of every column.
    pub loc: Vec<Loc>,
    /// Value of every column.
    pub x: Vec<f64>,
    /// Lower bound of every column.
    pub lb: Vec<f64>,
    /// Upper bound of every column.
    pub ub: Vec<f64>,
    /// Row-major m×m basis inverse.
    pub binv: Vec<f64>,
    /// Number of rows.
    pub m: usize,
    /// Number of structural columns.
    pub n_struct: usize,
}

struct Tableau {
    m: usize,
    /// structural + slack + artificial column count
    ncols: usize,
    n_struct: usize,
    art_start: usize,
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    b: Vec<f64>,
    basis: Vec<usize>,
    loc: Vec<Loc>,
    x: Vec<f64>,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    tol: f64,
}

/// A tiny deterministic magnitude for the singular-recovery perturbation:
/// index-hashed so neighboring bounds move by different amounts (the
/// point is to break exact degeneracy), relative so large bounds are not
/// perturbed below their own rounding noise, and ~1e-9 so every
/// downstream tolerance (simplex `tol`, MIP integrality, metric-cut
/// violation) dwarfs it.
fn perturb_eps(seed: u64, index: usize, value: f64) -> f64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let frac = ((z >> 11) as f64) / ((1u64 << 53) as f64);
    1e-9 * (1.0 + value.abs()) * (0.5 + frac)
}

impl Tableau {
    /// Build the phase-1 tableau. With `perturb = Some(seed)`, every
    /// finite structural bound is widened and every inequality RHS
    /// loosened by a deterministic [`perturb_eps`] — the feasible set
    /// only grows, so a feasible model stays feasible and the optimum
    /// moves by at most O(1e-9) relative.
    fn build(model: &Model, tol: f64, perturb: Option<u64>) -> Tableau {
        let m = model.num_constrs();
        let n = model.num_vars();
        let ncols = n + m + m;
        let art_start = n + m;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut lb = vec![0.0f64; ncols];
        let mut ub = vec![f64::INFINITY; ncols];
        for (j, v) in model.vars().iter().enumerate() {
            lb[j] = v.lb;
            ub[j] = v.ub;
            if let Some(seed) = perturb {
                if lb[j].is_finite() {
                    lb[j] -= perturb_eps(seed, 2 * j, lb[j]);
                }
                if ub[j].is_finite() {
                    ub[j] += perturb_eps(seed, 2 * j + 1, ub[j]);
                }
            }
        }
        let mut b = vec![0.0f64; m];
        for (i, c) in model.constrs().iter().enumerate() {
            b[i] = c.rhs;
            if let Some(seed) = perturb {
                let eps = perturb_eps(seed, 2 * (n + i), c.rhs);
                match c.sense {
                    Sense::Le => b[i] += eps,
                    Sense::Ge => b[i] -= eps,
                    Sense::Eq => {}
                }
            }
            for &(v, a) in &c.coeffs {
                cols[v.0].push((i, a));
            }
            let s = n + i;
            match c.sense {
                Sense::Le => cols[s].push((i, 1.0)),
                Sense::Ge => cols[s].push((i, -1.0)),
                Sense::Eq => {
                    cols[s].push((i, 1.0));
                    ub[s] = 0.0;
                }
            }
        }
        // Initial nonbasic point: each structural/slack at its finite bound
        // nearest zero, or zero if free.
        let mut x = vec![0.0f64; ncols];
        let mut loc = vec![Loc::AtLb; ncols];
        for j in 0..art_start {
            if lb[j].is_finite() {
                x[j] = lb[j];
                loc[j] = Loc::AtLb;
            } else if ub[j].is_finite() {
                x[j] = ub[j];
                loc[j] = Loc::AtUb;
            } else {
                x[j] = 0.0;
                loc[j] = Loc::FreeZero;
            }
        }
        // Residuals absorbed by artificials with ±1 coefficients.
        let mut resid = b.clone();
        for j in 0..art_start {
            if x[j] != 0.0 {
                for &(i, a) in &cols[j] {
                    resid[i] -= a * x[j];
                }
            }
        }
        let mut basis = Vec::with_capacity(m);
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            let aj = art_start + i;
            let sign = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
            cols[aj].push((i, sign));
            x[aj] = resid[i].abs();
            loc[aj] = Loc::Basic;
            basis.push(aj);
            binv[i * m + i] = sign;
        }
        Tableau {
            m,
            ncols,
            n_struct: n,
            art_start,
            cols,
            lb,
            ub,
            cost: vec![0.0; ncols],
            b,
            basis,
            loc,
            x,
            binv,
            tol,
        }
    }

    /// `y = c_B B⁻¹`.
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        for (r, &bj) in self.basis.iter().enumerate() {
            let cb = self.cost[bj];
            if cb != 0.0 {
                for i in 0..m {
                    y[i] += cb * self.binv[r * m + i];
                }
            }
        }
        y
    }

    /// Reduced cost of column `j` given duals `y`.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(i, a) in &self.cols[j] {
            d -= y[i] * a;
        }
        d
    }

    /// `t = B⁻¹ A_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut t = vec![0.0f64; m];
        for &(i, a) in &self.cols[j] {
            for r in 0..m {
                t[r] += a * self.binv[r * m + i];
            }
        }
        t
    }

    /// Recompute the basis inverse and basic values from scratch.
    fn refactorize(&mut self) -> Result<(), ()> {
        let m = self.m;
        // Dense basis matrix.
        let mut bmat = vec![0.0f64; m * m];
        for (c, &bj) in self.basis.iter().enumerate() {
            for &(i, a) in &self.cols[bj] {
                bmat[i * m + c] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting; the singularity
        // threshold scales with the matrix magnitude so well-scaled but
        // large-valued bases are not declared singular prematurely.
        let scale = bmat.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = bmat[col * m + col].abs();
            for r in col + 1..m {
                let v = bmat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-13 * scale {
                return Err(()); // singular basis: numerical trouble
            }
            if piv != col {
                for k in 0..m {
                    bmat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = bmat[col * m + col];
            for k in 0..m {
                bmat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = bmat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            bmat[r * m + k] -= f * bmat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_basics();
        Ok(())
    }

    /// Basic values `x_B = B⁻¹ (b − N x_N)`.
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.ncols {
            if self.loc[j] != Loc::Basic && self.x[j] != 0.0 {
                for &(i, a) in &self.cols[j] {
                    rhs[i] -= a * self.x[j];
                }
            }
        }
        for r in 0..m {
            let mut v = 0.0;
            for i in 0..m {
                v += self.binv[r * m + i] * rhs[i];
            }
            self.x[self.basis[r]] = v;
        }
    }

    /// One phase of the simplex. Returns the status reached. With
    /// `start_bland`, Bland's rule is used from the first pivot (the last
    /// rung of the singular-recovery ladder) instead of only after a
    /// degenerate run.
    fn optimize(
        &mut self,
        max_iters: usize,
        iterations: &mut usize,
        refactor: usize,
        start_bland: bool,
    ) -> LpStatus {
        let mut degenerate_run = 0usize;
        let mut bland = start_bland;
        loop {
            if *iterations >= max_iters {
                return LpStatus::IterationLimit;
            }
            let y = self.duals();
            // --- pricing ---------------------------------------------------
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, dir)
            for j in 0..self.ncols {
                if self.loc[j] == Loc::Basic {
                    continue;
                }
                // Fixed columns (lb == ub) can never improve.
                if self.ub[j] - self.lb[j] <= self.tol {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let dir = match self.loc[j] {
                    Loc::AtLb if d < -self.tol => 1.0,
                    Loc::AtUb if d > self.tol => -1.0,
                    Loc::FreeZero if d < -self.tol => 1.0,
                    Loc::FreeZero if d > self.tol => -1.0,
                    _ => continue,
                };
                if bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                if entering.is_none_or(|(_, best, _)| d.abs() > best) {
                    entering = Some((j, d.abs(), dir));
                }
            }
            let Some((j, _, dir)) = entering else {
                return LpStatus::Optimal;
            };
            *iterations += 1;

            // --- ratio test -------------------------------------------------
            let t = self.ftran(j);
            // Moving x_j by `dir·Δ` changes basic r by `-dir·t_r·Δ`.
            let span = self.ub[j] - self.lb[j]; // may be ∞
            let mut limit = span;
            let mut leaving: Option<(usize, Loc)> = None; // (row, bound hit)
            for r in 0..self.m {
                let rate = -dir * t[r];
                if rate.abs() <= 1e-10 {
                    continue;
                }
                let bj = self.basis[r];
                let room = if rate > 0.0 {
                    // basic value increases toward its upper bound
                    if self.ub[bj].is_infinite() {
                        continue;
                    }
                    (self.ub[bj] - self.x[bj]) / rate
                } else {
                    if self.lb[bj].is_infinite() {
                        continue;
                    }
                    (self.lb[bj] - self.x[bj]) / rate
                };
                let room = room.max(0.0);
                // Bland's anti-cycling rule needs the smallest-index
                // leaving variable among ties, not the first row seen.
                let better = room < limit - 1e-12
                    || (bland
                        && (room - limit).abs() <= 1e-12
                        && leaving.is_some_and(|(lr, _)| bj < self.basis[lr]));
                if better {
                    limit = room;
                    leaving = Some((r, if rate > 0.0 { Loc::AtUb } else { Loc::AtLb }));
                }
            }
            if limit.is_infinite() {
                return LpStatus::Unbounded;
            }
            if limit <= self.tol {
                degenerate_run += 1;
                if degenerate_run > 40 + self.m {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }

            // --- update -----------------------------------------------------
            let delta = dir * limit;
            for r in 0..self.m {
                let bj = self.basis[r];
                self.x[bj] -= t[r] * delta;
            }
            self.x[j] += delta;
            match leaving {
                None => {
                    // Bound flip: j moves to its opposite bound.
                    self.loc[j] = if dir > 0.0 { Loc::AtUb } else { Loc::AtLb };
                    // Snap exactly to the bound to kill drift.
                    self.x[j] = if dir > 0.0 { self.ub[j] } else { self.lb[j] };
                }
                Some((r, bound)) => {
                    let out = self.basis[r];
                    self.loc[out] = bound;
                    self.x[out] = match bound {
                        Loc::AtUb => self.ub[out],
                        _ => self.lb[out],
                    };
                    self.loc[j] = Loc::Basic;
                    self.basis[r] = j;
                    // Pivot the inverse: row r scaled by 1/t_r, others
                    // eliminated.
                    let m = self.m;
                    let tr = t[r];
                    if tr.abs() < 1e-11 {
                        // Numerically unsafe pivot: rebuild everything.
                        if self.refactorize().is_err() {
                            return LpStatus::NumericalFailure;
                        }
                        continue;
                    }
                    for k in 0..m {
                        self.binv[r * m + k] /= tr;
                    }
                    for rr in 0..m {
                        if rr != r && t[rr] != 0.0 {
                            let f = t[rr];
                            for k in 0..m {
                                self.binv[rr * m + k] -= f * self.binv[r * m + k];
                            }
                        }
                    }
                }
            }
            if (*iterations).is_multiple_of(refactor) && self.refactorize().is_err() {
                return LpStatus::NumericalFailure;
            }
        }
    }

    fn phase1_objective(&self) -> f64 {
        (self.art_start..self.ncols).map(|j| self.x[j].abs()).sum()
    }
}

/// Solve the LP relaxation of `model` (integrality is ignored here; see
/// [`crate::milp::solve_mip`] for the integer solver).
pub fn solve_lp(model: &Model, config: &SimplexConfig) -> LpSolution {
    solve_lp_tableau(model, config).0
}

/// Like [`solve_lp`] but also returns the optimal tableau snapshot (only
/// when the status is `Optimal`), for cut generation.
///
/// Singular-basis recovery: when a factorization fails mid-solve (or an
/// injected `lp-singular` fault pretends it did), the solve is retried
/// with deterministically perturbed bounds to break the degeneracy, then
/// with Bland's rule from the first pivot on the exact problem. Only if
/// every rung fails is [`LpStatus::NumericalFailure`] reported.
pub fn solve_lp_tableau(
    model: &Model,
    config: &SimplexConfig,
) -> (LpSolution, Option<TableauView>) {
    solve_lp_tableau_chaos(model, config, np_chaos::global())
}

/// [`solve_lp_tableau`] with an explicit fault-injection handle, so
/// tests can force singular bases without touching the process-wide
/// chaos plan.
pub fn solve_lp_tableau_chaos(
    model: &Model,
    config: &SimplexConfig,
    chaos: &np_chaos::Chaos,
) -> (LpSolution, Option<TableauView>) {
    if !chaos.should_fire(np_chaos::FaultClass::LpSingular) {
        let r = solve_attempt(model, config, None, false);
        if r.0.status != LpStatus::NumericalFailure {
            return r;
        }
    }
    let r = solve_attempt(model, config, Some(0x5eed_cafe), false);
    if r.0.status != LpStatus::NumericalFailure {
        return r;
    }
    solve_attempt(model, config, None, true)
}

/// One rung of the recovery ladder: a full two-phase solve, optionally
/// on perturbed bounds and/or with Bland's rule throughout.
fn solve_attempt(
    model: &Model,
    config: &SimplexConfig,
    perturb: Option<u64>,
    bland: bool,
) -> (LpSolution, Option<TableauView>) {
    let mut t = Tableau::build(model, config.tol, perturb);
    let max_iters = if config.max_iterations > 0 {
        config.max_iterations
    } else {
        200 * (t.m + t.n_struct) + 20_000
    };
    let mut iterations = 0usize;

    // Phase 1: minimize the artificial mass.
    for j in t.art_start..t.ncols {
        t.cost[j] = 1.0;
    }
    let s1 = t.optimize(max_iters, &mut iterations, config.refactor_every, bland);
    let extract = |t: &Tableau, status: LpStatus, iterations: usize| LpSolution {
        status,
        objective: model.objective_value(&t.x[..t.n_struct]),
        x: t.x[..t.n_struct].to_vec(),
        duals: t.duals(),
        iterations,
    };
    if s1 == LpStatus::IterationLimit || s1 == LpStatus::NumericalFailure {
        return (extract(&t, s1, iterations), None);
    }
    if t.phase1_objective() > config.tol * 10.0 {
        return (extract(&t, LpStatus::Infeasible, iterations), None);
    }
    // Phase 2: real costs; artificials pinned at zero.
    for j in 0..t.ncols {
        t.cost[j] = if j < t.n_struct {
            model.var(crate::model::VarId(j)).obj
        } else {
            0.0
        };
    }
    for j in t.art_start..t.ncols {
        t.ub[j] = 0.0;
        if t.loc[j] != Loc::Basic {
            t.x[j] = 0.0;
            t.loc[j] = Loc::AtLb;
        }
    }
    let s2 = t.optimize(max_iters, &mut iterations, config.refactor_every, bland);
    // Final cleanup for tight agreement between x and the row system.
    if s2 == LpStatus::Optimal {
        let _ = t.refactorize();
    }
    let view = (s2 == LpStatus::Optimal).then(|| TableauView {
        basis: t.basis.clone(),
        loc: t.loc.clone(),
        x: t.x.clone(),
        lb: t.lb.clone(),
        ub: t.ub.clone(),
        binv: t.binv.clone(),
        m: t.m,
        n_struct: t.n_struct,
    });
    (extract(&t, s2, iterations), view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn cfg() -> SimplexConfig {
        SimplexConfig::default()
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (≡ min −3x −5y)
        // Optimum (2, 6) with objective −36.
        let mut m = Model::new("wyndor");
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0, false);
        m.add_constr("c1", vec![(x, 1.0)], Sense::Le, 4.0);
        m.add_constr("c2", vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constr("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-6);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 → (8, 2), obj 12.
        let mut m = Model::new("eq");
        let x = m.add_var("x", 3.0, f64::INFINITY, 1.0, false);
        let y = m.add_var("y", 2.0, f64::INFINITY, 2.0, false);
        m.add_constr("sum", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert!((s.x[0] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("inf");
        let x = m.add_var("x", 0.0, 1.0, 0.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(solve_lp(&m, &cfg()).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new("unb");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        m.add_constr("c", vec![(x, -1.0)], Sense::Le, 5.0);
        assert_eq!(solve_lp(&m, &cfg()).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // min −x − y, x ≤ 3, y ≤ 4 with no constraints: hits the box corner.
        let mut m = Model::new("box");
        m.add_var("x", 0.0, 3.0, -1.0, false);
        m.add_var("y", 0.0, 4.0, -1.0, false);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 7.0).abs() < 1e-9);
    }

    #[test]
    fn free_variables() {
        // min x s.t. x >= -5 via row (x itself free): optimum −5.
        let mut m = Model::new("free");
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, -5.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // min y s.t. −x − y ≤ −4, x ≤ 3 → y ≥ 4 − x ≥ 1.
        let mut m = Model::new("negrhs");
        let x = m.add_var("x", 0.0, 3.0, 0.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, false);
        m.add_constr("c", vec![(x, -1.0), (y, -1.0)], Sense::Le, -4.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant rows through the optimum.
        let mut m = Model::new("degen");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, -1.0, false);
        for k in 1..=6 {
            m.add_constr(
                format!("c{k}"),
                vec![(x, 1.0), (y, f64::from(k))],
                Sense::Le,
                f64::from(k),
            );
        }
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        // Optimum x=1,y=0 (binding c1) gives −1... check feasibility+value.
        assert!(m.is_feasible(&s.x, 1e-6));
        assert!(s.objective <= -1.0 + 1e-6);
    }

    /// The degenerate instance shared by the recovery tests: many
    /// redundant rows through the optimum (x=1, y=0, objective −1).
    fn degenerate_model() -> Model {
        let mut m = Model::new("degen");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        let y = m.add_var("y", 0.0, f64::INFINITY, -1.0, false);
        for k in 1..=6 {
            m.add_constr(
                format!("c{k}"),
                vec![(x, 1.0), (y, f64::from(k))],
                Sense::Le,
                f64::from(k),
            );
        }
        m
    }

    #[test]
    fn injected_singular_basis_recovers_via_perturbation() {
        use np_chaos::{Chaos, FaultClass, FaultPlan};
        let m = degenerate_model();
        let clean = solve_lp(&m, &cfg());
        assert_eq!(clean.status, LpStatus::Optimal);
        // The chaos plan declares the first solve attempt singular; the
        // perturbed retry must land on the same optimum.
        let chaos = Chaos::new(FaultPlan::parse("lp-singular@0").unwrap());
        let (sol, view) = solve_lp_tableau_chaos(&m, &cfg(), &chaos);
        assert_eq!(chaos.fired(FaultClass::LpSingular), 1);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective - clean.objective).abs() < 1e-6,
            "perturbed recovery drifted: {} vs {}",
            sol.objective,
            clean.objective
        );
        assert!(view.is_some(), "recovered solves still produce a tableau");
    }

    #[test]
    fn bland_fallback_solves_the_degenerate_lp_exactly() {
        // The last rung of the ladder — Bland's rule from the first
        // pivot on the unperturbed problem — must terminate on the
        // degenerate instance and agree with the Dantzig solve.
        let m = degenerate_model();
        let clean = solve_lp(&m, &cfg());
        let (bland, _) = solve_attempt(&m, &cfg(), None, true);
        assert_eq!(bland.status, LpStatus::Optimal);
        assert!(
            (bland.objective - clean.objective).abs() < 1e-9,
            "Bland fallback drifted: {} vs {}",
            bland.objective,
            clean.objective
        );
    }

    #[test]
    fn perturbed_attempt_stays_within_tolerance_everywhere() {
        // Perturbation only widens the feasible set, so the perturbed
        // optimum can only improve, and by a hair.
        let mut wyndor = Model::new("wyndor");
        let x = wyndor.add_var("x", 0.0, f64::INFINITY, -3.0, false);
        let y = wyndor.add_var("y", 0.0, f64::INFINITY, -5.0, false);
        wyndor.add_constr("c1", vec![(x, 1.0)], Sense::Le, 4.0);
        wyndor.add_constr("c2", vec![(y, 2.0)], Sense::Le, 12.0);
        wyndor.add_constr("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        for (name, m) in [("degen", degenerate_model()), ("wyndor", wyndor)] {
            let clean = solve_lp(&m, &cfg());
            let (pert, _) = solve_attempt(&m, &cfg(), Some(0x5eed_cafe), false);
            assert_eq!(pert.status, LpStatus::Optimal, "{name}");
            assert!(
                pert.objective <= clean.objective + 1e-9,
                "{name}: widening must not worsen the optimum"
            );
            assert!(
                (pert.objective - clean.objective).abs() < 1e-6,
                "{name}: perturbation moved the objective too far: {} vs {}",
                pert.objective,
                clean.objective
            );
        }
    }

    #[test]
    fn duals_price_binding_rows() {
        // min −x, x ≤ 4 (row): y = −1 prices the row; reduced costs ≥ 0.
        let mut m = Model::new("dual");
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0, false);
        m.add_constr("cap", vec![(x, 1.0)], Sense::Le, 4.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.duals[0] + 1.0).abs() < 1e-6, "dual = {}", s.duals[0]);
    }

    #[test]
    fn transportation_problem() {
        // 2 plants (cap 20, 30) → 3 markets (demand 10, 25, 15),
        // costs rows: [8,6,10],[9,12,13]. Known optimum 395:
        // plant1 → m2 (20 @6) ... verify against brute LP structure.
        let mut m = Model::new("transport");
        let costs = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let caps = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        let mut v = vec![];
        for (p, row) in costs.iter().enumerate() {
            for (mk, &c) in row.iter().enumerate() {
                v.push(m.add_var(format!("x{p}{mk}"), 0.0, f64::INFINITY, c, false));
            }
        }
        for (p, &cap) in caps.iter().enumerate() {
            m.add_constr(
                format!("cap{p}"),
                (0..3).map(|mk| (v[p * 3 + mk], 1.0)).collect(),
                Sense::Le,
                cap,
            );
        }
        for (mk, &d) in demands.iter().enumerate() {
            m.add_constr(
                format!("dem{mk}"),
                (0..2).map(|p| (v[p * 3 + mk], 1.0)).collect(),
                Sense::Ge,
                d,
            );
        }
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-6));
        // Optimal: p0→m2:5? Let's check the known LP optimum by weak duality
        // against a hand-computed feasible dual bound; value must be 460.
        // Feasible primal: p0: m1=20; p1: m0=10, m1=5, m2=15 →
        // 6·20 + 9·10 + 12·5 + 13·15 = 465. Solver must do at least as well.
        assert!(s.objective <= 465.0 + 1e-6);
        // And no better than the LP bound from costs ≥ 6 per unit · 50 = 300.
        assert!(s.objective >= 300.0);
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        let mut m = Model::new("fixed");
        let x = m.add_var("x", 2.0, 2.0, -10.0, false);
        let y = m.add_var("y", 0.0, 5.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let s = solve_lp(&Model::new("empty"), &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn larger_random_lp_satisfies_kkt_spotchecks() {
        // A 30×60 random-but-seeded LP: verify feasibility and that the
        // objective is not improvable along any single coordinate
        // (first-order stationarity on the box).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Model::new("rand");
        let mut vars = Vec::new();
        for j in 0..60 {
            let ub = rng.gen_range(1.0..5.0);
            let obj = rng.gen_range(-2.0..2.0);
            vars.push(m.add_var(format!("x{j}"), 0.0, ub, obj, false));
        }
        for i in 0..30 {
            let mut coeffs = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.3) {
                    coeffs.push((v, rng.gen_range(0.1..1.0)));
                }
            }
            if coeffs.is_empty() {
                continue;
            }
            let worth: f64 = coeffs.iter().map(|&(_, c)| c).sum();
            m.add_constr(format!("r{i}"), coeffs, Sense::Le, worth * 2.0);
        }
        let s = solve_lp(&m, &cfg());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.x, 1e-5));
    }
}
