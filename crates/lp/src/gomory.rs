//! Gomory mixed-integer (GMI) cut generation from an optimal tableau.
//!
//! Given an optimal basis where some integer variable is basic at a
//! fractional value, the corresponding tableau row
//!
//! ```text
//!   x_B + Σ_j ā_j t_j = x̄        (t_j = nonbasic j's shift off its bound)
//! ```
//!
//! yields the GMI inequality `Σ_j π_j t_j ≥ f₀` with `f₀ = frac(x̄)` and
//!
//! * integer `t_j`:  `π_j = f_j` if `f_j ≤ f₀` else `f₀(1−f_j)/(1−f₀)`
//!   where `f_j = frac(ā_j)`,
//! * continuous `t_j`: `π_j = ā_j` if `ā_j ≥ 0` else `f₀·(−ā_j)/(1−f₀)`.
//!
//! Substituting the shifts (`t_j = x_j − l_j` at lower bound,
//! `t_j = u_j − x_j` at upper) and the slack definitions turns the cut
//! into a plain `≥` row over structural variables, valid for every
//! mixed-integer point of the *original* bounds — so cuts generated at
//! the root of a branch-and-bound tree are globally valid.

use crate::model::{Model, Sense, VarId};
use crate::simplex::{Loc, TableauView};

/// A generated cut `Σ coeffs·x ≥ rhs` over structural variables.
#[derive(Clone, Debug)]
pub struct GmiCut {
    /// Sparse structural coefficients.
    pub coeffs: Vec<(VarId, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl GmiCut {
    /// Violation of the cut at a point (positive = violated).
    pub fn violation(&self, x: &[f64]) -> f64 {
        self.rhs - self.coeffs.iter().map(|&(v, w)| w * x[v.0]).sum::<f64>()
    }
}

/// Fractionality thresholds: rows with `f₀` outside this band produce
/// numerically dubious cuts and are skipped.
const MIN_FRAC: f64 = 0.02;
/// Largest acceptable dynamic range of a cut's coefficients.
const MAX_DYNAMIC: f64 = 1e7;

/// Generate up to `max_cuts` GMI cuts from an optimal tableau.
///
/// `is_int[j]` flags the integer structural variables. Cuts are returned
/// most-fractional-source first, each guaranteed violated by the current
/// LP point by at least `min_violation`.
pub fn generate(
    model: &Model,
    view: &TableauView,
    is_int: &[bool],
    max_cuts: usize,
    min_violation: f64,
) -> Vec<GmiCut> {
    let n = view.n_struct;
    // Candidate rows: basic integer structural variable, fractional value.
    let mut rows: Vec<(usize, f64)> = view
        .basis
        .iter()
        .enumerate()
        .filter_map(|(r, &bj)| {
            if bj >= n || !is_int[bj] {
                return None;
            }
            let f0 = frac(view.x[bj]);
            (f0 > MIN_FRAC && f0 < 1.0 - MIN_FRAC).then_some((r, f0))
        })
        .collect();
    rows.sort_by(|a, b| {
        let da = (a.1 - 0.5).abs();
        let db = (b.1 - 0.5).abs();
        da.partial_cmp(&db).expect("fractions are finite")
    });

    let mut cuts = Vec::new();
    let lp_x: Vec<f64> = view.x[..n].to_vec();
    for (r, f0) in rows.into_iter().take(max_cuts * 3) {
        if let Some(cut) = cut_from_row(model, view, is_int, r, f0) {
            if cut.violation(&lp_x) >= min_violation {
                cuts.push(cut);
                if cuts.len() >= max_cuts {
                    break;
                }
            }
        }
    }
    cuts
}

fn frac(v: f64) -> f64 {
    v - v.floor()
}

/// The tableau-row coefficient of column `j` in basis row `r`:
/// `(B⁻¹ A_j)_r`.
fn row_coeff(model: &Model, view: &TableauView, r: usize, j: usize) -> f64 {
    let m = view.m;
    let n = view.n_struct;
    let binv_row = &view.binv[r * m..(r + 1) * m];
    if j < n {
        // Structural column from the model.
        let mut v = 0.0;
        for (i, c) in model.constrs().iter().enumerate() {
            for &(var, a) in &c.coeffs {
                if var.0 == j {
                    v += binv_row[i] * a;
                }
            }
        }
        v
    } else {
        // Slack column: ±e_row.
        let row = j - n;
        let sign = match model.constrs()[row].sense {
            Sense::Ge => -1.0,
            _ => 1.0,
        };
        binv_row[row] * sign
    }
}

fn cut_from_row(
    model: &Model,
    view: &TableauView,
    is_int: &[bool],
    r: usize,
    f0: f64,
) -> Option<GmiCut> {
    let n = view.n_struct;
    let m = view.m;
    // Accumulate the structural-space cut: coeffs·x ≥ rhs.
    let mut coeffs = vec![0.0f64; n];
    let mut rhs = f0;
    for j in 0..n + m {
        if view.loc[j] == Loc::Basic {
            continue;
        }
        // Fixed columns (e.g. Eq-row slacks) have t ≡ 0.
        if view.ub[j] - view.lb[j] <= 1e-12 {
            continue;
        }
        let a = row_coeff(model, view, r, j);
        if a.abs() < 1e-12 {
            continue;
        }
        // Shift direction off the active bound.
        let (at_upper, free) = match view.loc[j] {
            Loc::AtUb => (true, false),
            Loc::FreeZero => (false, true),
            _ => (false, false),
        };
        if free {
            // A free nonbasic variable cannot be complemented to a
            // nonnegative shift; GMI is invalid for this row.
            return None;
        }
        // In t-space the row reads x_B + Σ ā t = x̄ with ā = a for
        // lower-bound columns and ā = −a for upper-bound columns.
        let abar = if at_upper { -a } else { a };
        let integral_shift = j < n && is_int[j] && is_integer_bound(view, j);
        let pi = if integral_shift {
            let fj = frac(abar);
            if fj <= f0 {
                fj
            } else {
                f0 * (1.0 - fj) / (1.0 - f0)
            }
        } else if abar >= 0.0 {
            abar
        } else {
            f0 * (-abar) / (1.0 - f0)
        };
        if pi == 0.0 {
            continue;
        }
        // Substitute t back to structural space: t = c0 + Σ c_k x_k.
        if j < n {
            if at_upper {
                // t = u_j − x_j
                coeffs[j] -= pi;
                rhs -= pi * view.ub[j];
            } else {
                // t = x_j − l_j
                coeffs[j] += pi;
                rhs += pi * view.lb[j];
            }
        } else {
            // Slack of row `j − n` (always nonbasic at lower bound 0):
            // Le/Eq: s = b − A·x ; Ge: s = A·x − b.
            let row = j - n;
            let c = &model.constrs()[row];
            match c.sense {
                Sense::Ge => {
                    for &(v, w) in &c.coeffs {
                        coeffs[v.0] += pi * w;
                    }
                    rhs += pi * c.rhs;
                }
                _ => {
                    for &(v, w) in &c.coeffs {
                        coeffs[v.0] -= pi * w;
                    }
                    rhs -= pi * c.rhs;
                }
            }
        }
    }
    // Numerical guardrails.
    let max = coeffs.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if max <= 1e-12 || !rhs.is_finite() {
        return None;
    }
    let min_nonzero = coeffs
        .iter()
        .filter(|v| v.abs() > 1e-12)
        .fold(f64::INFINITY, |acc, &v| acc.min(v.abs()));
    if max / min_nonzero > MAX_DYNAMIC {
        return None;
    }
    let sparse: Vec<(VarId, f64)> = coeffs
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v.abs() > 1e-12)
        .map(|(k, &v)| (VarId(k), v))
        .collect();
    Some(GmiCut {
        coeffs: sparse,
        rhs,
    })
}

fn is_integer_bound(view: &TableauView, j: usize) -> bool {
    let near_int = |v: f64| v.is_infinite() || (v - v.round()).abs() < 1e-9;
    near_int(view.lb[j]) && near_int(view.ub[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::simplex::{solve_lp_tableau, LpStatus, SimplexConfig};

    fn lp_and_view(model: &Model) -> (Vec<f64>, TableauView) {
        let (sol, view) = solve_lp_tableau(model, &SimplexConfig::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        (sol.x, view.expect("optimal gives a view"))
    }

    /// min x, 2x ≥ 3, x integer: LP gives 1.5; a GMI cut must enforce
    /// x ≥ 2.
    #[test]
    fn gmi_closes_the_classic_rounding_gap() {
        let mut m = Model::new("round");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 2.0)], Sense::Ge, 3.0);
        let (lp_x, view) = lp_and_view(&m);
        assert!((lp_x[0] - 1.5).abs() < 1e-6);
        let cuts = generate(&m, &view, &[true], 4, 1e-6);
        assert!(
            !cuts.is_empty(),
            "a fractional basic integer must yield a cut"
        );
        // Each cut: violated at 1.5 but satisfied at the integer optimum 2.
        for cut in &cuts {
            assert!(cut.violation(&[1.5]) > 1e-9);
            assert!(
                cut.violation(&[2.0]) <= 1e-9,
                "cut must admit x = 2: {cut:?}"
            );
            assert!(cut.violation(&[3.0]) <= 1e-9);
        }
    }

    /// A 2-variable knapsack-ish LP with fractional optimum; all integer
    /// feasible points must survive every generated cut.
    #[test]
    fn gmi_cuts_are_valid_for_all_integer_points() {
        let mut m = Model::new("knap");
        let a = m.add_var("a", 0.0, 5.0, -3.0, true);
        let b = m.add_var("b", 0.0, 5.0, -4.0, true);
        m.add_constr("w1", vec![(a, 2.0), (b, 3.0)], Sense::Le, 7.0);
        m.add_constr("w2", vec![(a, 3.0), (b, 1.0)], Sense::Le, 8.0);
        let (lp_x, view) = lp_and_view(&m);
        let cuts = generate(&m, &view, &[true, true], 8, 1e-7);
        // Enumerate every integer point of the box and check validity.
        for cut in &cuts {
            assert!(
                cut.violation(&lp_x) > 0.0,
                "returned cuts are violated at the LP point"
            );
            for ai in 0..=5 {
                for bi in 0..=5 {
                    let p = [f64::from(ai), f64::from(bi)];
                    if m.is_feasible(&p, 1e-9) {
                        assert!(
                            cut.violation(&p) <= 1e-7,
                            "cut {cut:?} wrongly excludes integer point {p:?}"
                        );
                    }
                }
            }
        }
    }

    /// Mixed problem: continuous variable participates via the continuous
    /// GMI coefficients; integer-feasible mixed points must survive.
    #[test]
    fn gmi_handles_mixed_integer_rows() {
        let mut m = Model::new("mix");
        let x = m.add_var("x", 0.0, 10.0, 2.0, true);
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_constr("c1", vec![(x, 2.0), (y, 1.0)], Sense::Ge, 5.0);
        m.add_constr("c2", vec![(x, 1.0), (y, 3.0)], Sense::Ge, 4.5);
        let (lp_x, view) = lp_and_view(&m);
        let cuts = generate(&m, &view, &[true, false], 8, 1e-9);
        for cut in &cuts {
            assert!(cut.violation(&lp_x) > 0.0);
            // Sample mixed feasible points with integer x.
            for xi in 0..=10 {
                for yk in 0..=40 {
                    let p = [f64::from(xi), f64::from(yk) * 0.25];
                    if m.is_feasible(&p, 1e-9) {
                        assert!(
                            cut.violation(&p) <= 1e-6,
                            "cut {cut:?} wrongly excludes {p:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn integral_optimum_yields_no_cuts() {
        let mut m = Model::new("intopt");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 4.0);
        let (_, view) = lp_and_view(&m);
        assert!(generate(&m, &view, &[true], 4, 1e-9).is_empty());
    }

    /// Larger randomized validation: every generated cut must keep every
    /// integer-feasible corner we can enumerate.
    #[test]
    fn randomized_small_mips_never_lose_integer_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let mut m = Model::new(format!("t{trial}"));
            let a = m.add_var("a", 0.0, 4.0, rng.gen_range(-3.0..3.0), true);
            let b = m.add_var("b", 0.0, 4.0, rng.gen_range(-3.0..3.0), true);
            let c = m.add_var("c", 0.0, 4.0, rng.gen_range(-3.0..3.0), true);
            for k in 0..3 {
                let coeffs = vec![
                    (a, rng.gen_range(0.2..2.0)),
                    (b, rng.gen_range(0.2..2.0)),
                    (c, rng.gen_range(0.2..2.0)),
                ];
                let worth: f64 = coeffs.iter().map(|&(_, w)| w).sum();
                let sense = if rng.gen_bool(0.5) {
                    Sense::Le
                } else {
                    Sense::Ge
                };
                let rhs = worth * rng.gen_range(0.8..2.4);
                m.add_constr(format!("r{k}"), coeffs, sense, rhs);
            }
            let (sol, view) = solve_lp_tableau(&m, &SimplexConfig::default());
            if sol.status != LpStatus::Optimal {
                continue;
            }
            let cuts = generate(&m, &view.unwrap(), &[true, true, true], 8, 1e-9);
            for cut in &cuts {
                for ai in 0..=4 {
                    for bi in 0..=4 {
                        for ci in 0..=4 {
                            let p = [f64::from(ai), f64::from(bi), f64::from(ci)];
                            if m.is_feasible(&p, 1e-9) {
                                assert!(
                                    cut.violation(&p) <= 1e-6,
                                    "trial {trial}: cut {cut:?} excludes {p:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
