//! Branch & bound mixed-integer solver with lazy-constraint callbacks.
//!
//! This is the slice of a commercial MILP solver that NeuroPlan's
//! formulation exercises:
//!
//! * LP-relaxation bounding via [`crate::simplex`];
//! * best-bound node selection (ties broken toward deeper nodes so an
//!   incumbent appears early);
//! * most-fractional branching;
//! * incumbent management with a relative optimality gap;
//! * node and wall-clock limits — the knobs the paper's operators use to
//!   trade tractability for optimality;
//! * **lazy constraints**: every integer-feasible candidate is offered to
//!   a separator callback which may return violated cuts. The cuts are
//!   added *globally* (they must be valid for the whole problem, which
//!   metric inequalities are) and the node is re-solved. This implements
//!   the Benders loop that lets a capacity-only master stand in for the
//!   paper's monolithic all-failure ILP.

use crate::gomory;
use crate::model::{Model, Sense, VarId};
use crate::simplex::{solve_lp, solve_lp_warm_chaos, LpSolution, LpStatus, SimplexConfig};
use crate::sparse::WarmBasis;
use np_telemetry::{sys, Telemetry};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Instant;

/// Solver-side counters, accumulated locally and emitted as one batch of
/// telemetry events per solve (so event volume stays bounded no matter
/// how many nodes the tree visits).
#[derive(Default)]
struct MipTally {
    simplex_iterations: u64,
    lazy_callbacks: u64,
    gomory_cuts: u64,
    incumbent_updates: u64,
    /// Microseconds the solve ran past `time_limit_secs` inside
    /// separation rounds (a single separator call is not interruptible,
    /// so the budget can only be honored at round boundaries).
    deadline_overshoot_us: u64,
    /// Basis factorizations across all node LPs.
    refactorizations: u64,
    /// Sum of per-solve peak eta-file lengths (sparse backend only).
    eta_len: u64,
    /// Pivots spent in warm-started re-optimizations.
    warm_start_pivots: u64,
    /// Node LPs solved without a reusable basis.
    cold_solves: u64,
    /// Stage wall time across all node LPs (µs), populated only when
    /// [`SimplexConfig::collect_timing`] is on. Emitted as `lp` spans —
    /// never counters — so counter streams stay bit-identical with
    /// profiling on or off.
    factor_us: u64,
    ftran_btran_us: u64,
    pricing_us: u64,
}

impl MipTally {
    /// Fold one LP solution's counters into the tally.
    fn absorb(&mut self, lp: &LpSolution) {
        self.simplex_iterations += lp.iterations as u64;
        self.refactorizations += lp.stats.refactorizations;
        self.eta_len += lp.stats.peak_eta_len;
        if lp.stats.warm {
            self.warm_start_pivots += lp.stats.warm_pivots;
        } else {
            self.cold_solves += 1;
        }
        self.factor_us += lp.stats.factor_us;
        self.ftran_btran_us += lp.stats.ftran_btran_us;
        self.pricing_us += lp.stats.pricing_us;
    }

    fn emit(&self, tel: &Telemetry, nodes: usize, cuts_added: usize) {
        if !tel.is_enabled() {
            return;
        }
        tel.incr(sys::LP, "simplex_iterations", self.simplex_iterations);
        tel.incr(sys::LP, "bb_nodes", nodes as u64);
        tel.incr(sys::LP, "lazy_callbacks", self.lazy_callbacks);
        tel.incr(sys::LP, "gomory_cuts", self.gomory_cuts);
        tel.incr(sys::LP, "cuts_added", cuts_added as u64);
        tel.incr(sys::LP, "incumbent_updates", self.incumbent_updates);
        tel.incr(sys::LP, "deadline_overshoot_us", self.deadline_overshoot_us);
        tel.incr(sys::LP, "refactorizations", self.refactorizations);
        tel.incr(sys::LP, "eta_len", self.eta_len);
        tel.incr(sys::LP, "warm_start_pivots", self.warm_start_pivots);
        tel.incr(sys::LP, "cold_solves", self.cold_solves);
        // Stage times (present only under `--profile`) ride as deferred
        // leaf spans: `record_span` charges their self time to the live
        // enclosing `solve_mip` span, keeping self-time sums ≤ wall.
        if self.factor_us + self.ftran_btran_us + self.pricing_us > 0 {
            tel.record_span(sys::LP, "factorize", self.factor_us);
            tel.record_span(sys::LP, "ftran_btran", self.ftran_btran_us);
            tel.record_span(sys::LP, "pricing", self.pricing_us);
        }
    }
}

/// Microseconds by which the wall-clock budget is currently exceeded
/// (0 while inside the budget, and always 0 for an infinite budget).
fn overshoot_us(start: &Instant, limit_secs: f64) -> u64 {
    let over = start.elapsed().as_secs_f64() - limit_secs;
    if over > 0.0 {
        (over * 1e6) as u64
    } else {
        0
    }
}

/// A globally-valid linear cut returned by a separator callback.
#[derive(Clone, Debug)]
pub struct Cut {
    /// Name for diagnostics.
    pub name: String,
    /// Sparse row coefficients.
    pub coeffs: Vec<(VarId, f64)>,
    /// Row sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A lazy-constraint callback: given an integer-feasible LP optimum,
/// return violated globally-valid cuts (empty = accept the candidate).
pub type SeparatorFn<'a> = &'a mut dyn FnMut(&[f64]) -> Vec<Cut>;

/// MILP solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct MipConfig {
    /// Maximum branch-and-bound nodes to process.
    pub node_limit: usize,
    /// Wall-clock budget in seconds (`f64::INFINITY` = none).
    pub time_limit_secs: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_tol: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Configuration for the node LPs.
    pub simplex: SimplexConfig,
    /// Known upper bound (e.g. the cost of a feasible warm-start plan);
    /// nodes above it are pruned from the start.
    pub cutoff: Option<f64>,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            node_limit: 50_000,
            time_limit_secs: f64::INFINITY,
            gap_tol: 1e-6,
            int_tol: 1e-6,
            simplex: SimplexConfig::default(),
            cutoff: None,
        }
    }
}

/// Final status of a MILP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MipStatus {
    /// Incumbent proven optimal (within `gap_tol`).
    Optimal,
    /// A non-deadline limit (nodes, LP iterations) was hit; the
    /// incumbent is feasible but unproven.
    Feasible,
    /// No integer-feasible point exists.
    Infeasible,
    /// A non-deadline limit was hit before any incumbent was found.
    Limit,
    /// The relaxation is unbounded.
    Unbounded,
    /// The wall-clock budget expired (real or chaos-injected). The
    /// best incumbent found so far, if any, is returned in
    /// `x`/`objective` — deadline expiry never discards it.
    TimeLimit,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Outcome; `x`/`objective` are the incumbent for
    /// `Optimal`/`Feasible`.
    pub status: MipStatus,
    /// Incumbent objective (`f64::INFINITY` when none).
    pub objective: f64,
    /// Incumbent point (empty when none).
    pub x: Vec<f64>,
    /// Best remaining lower bound at termination.
    pub best_bound: f64,
    /// Nodes processed.
    pub nodes: usize,
    /// Lazy cuts added by the separator.
    pub cuts_added: usize,
    /// Microseconds the solve ran past its wall-clock budget inside
    /// uninterruptible separation rounds (also emitted as the
    /// `lp.deadline_overshoot_us` telemetry counter).
    pub deadline_overshoot_us: u64,
}

impl MipSolution {
    /// Relative gap between incumbent and bound (0 when proven optimal).
    pub fn gap(&self) -> f64 {
        if !self.objective.is_finite() {
            return f64::INFINITY;
        }
        (self.objective - self.best_bound).max(0.0) / self.objective.abs().max(1.0)
    }
}

#[derive(Clone)]
struct Node {
    /// `(var, lb, ub)` bound overrides accumulated along the branch path.
    overrides: Vec<(VarId, f64, f64)>,
    bound: f64,
    depth: usize,
    /// Parent's optimal basis (sparse backend), tagged with the cut-purge
    /// generation it was captured under: a purge renumbers cut rows, so a
    /// snapshot from an older generation is treated as cold.
    basis: Option<(u64, Rc<WarmBasis>)>,
}

#[derive(PartialEq)]
struct HeapKey(f64, Reverse<usize>);

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the *smallest* bound first, and
        // among equal bounds the *deepest* node (drives to incumbents).
        other
            .0
            .partial_cmp(&self.0)
            .expect("bounds are never NaN")
            .then_with(|| other.1 .0.cmp(&self.1 .0).reverse())
    }
}

/// Solve `model` to integer optimality (or a limit).
///
/// `separator`, if provided, is called on every integer-feasible LP
/// optimum; returning a non-empty set of violated, globally-valid cuts
/// rejects the candidate — the cuts are appended and the node re-solved.
pub fn solve_mip(
    model: &Model,
    config: &MipConfig,
    separator: Option<SeparatorFn<'_>>,
) -> MipSolution {
    solve_mip_telemetry(model, config, separator, &Telemetry::noop())
}

/// [`solve_mip`] with solver counters reported through `tel`: simplex
/// iterations, branch-and-bound nodes, lazy-callback invocations, Gomory
/// cuts, total cuts, incumbent updates, plus a `solve_mip` span.
pub fn solve_mip_telemetry(
    model: &Model,
    config: &MipConfig,
    mut separator: Option<SeparatorFn<'_>>,
    tel: &Telemetry,
) -> MipSolution {
    let _solve_span = tel.span(sys::LP, "solve_mip");
    let mut tally = MipTally::default();
    let start = Instant::now();
    // Under the process-global `--profile` switch, node LPs collect
    // stage times (factorize / ftran-btran / pricing). Timing never
    // changes arithmetic, so the solve path is otherwise identical.
    let simplex_cfg = SimplexConfig {
        collect_timing: config.simplex.collect_timing
            || (tel.is_enabled() && np_telemetry::profiling()),
        ..config.simplex
    };
    // Every wall-clock check is also a chaos trigger point: an injected
    // `deadline` fault exhausts the budget early, exercising the same
    // graceful limit-hit path a real timeout takes.
    let chaos = np_chaos::global();
    let deadline_hit = |start: &Instant| {
        start.elapsed().as_secs_f64() > config.time_limit_secs
            || chaos.should_fire(np_chaos::FaultClass::Deadline)
    };
    let mut work = model.clone();
    // Root bound tightening (rows untouched, so cut/dual indexing is
    // stable). Tightened bounds are valid for every feasible point, so
    // they become the base the branching restores to.
    let (_, presolve_infeasible) = crate::presolve::tighten_bounds(&mut work);
    if presolve_infeasible {
        tally.emit(tel, 0, 0);
        return MipSolution {
            status: MipStatus::Infeasible,
            objective: f64::INFINITY,
            x: vec![],
            best_bound: f64::INFINITY,
            nodes: 0,
            cuts_added: 0,
            deadline_overshoot_us: 0,
        };
    }
    let int_vars: Vec<VarId> = (0..model.num_vars())
        .map(VarId)
        .filter(|&v| model.var(v).integer)
        .collect();

    let mut incumbent_obj = config.cutoff.unwrap_or(f64::INFINITY);
    let mut incumbent_x: Vec<f64> = Vec::new();
    let mut nodes = 0usize;
    let mut cuts_added = 0usize;
    let mut root_cut_rounds = 0usize;
    let mut gmi_rounds = 0usize;
    let mut rounding_attempts = 0usize;
    let is_int: Vec<bool> = model.vars().iter().map(|v| v.integer).collect();
    // Cut-pool management: lazy cuts accumulate in `work` and every node
    // LP pays for them, so before adding new ones we purge cut rows that
    // are strictly slack at the current point (always keeping the most
    // recent block). Dropping a globally-valid cut is always safe — the
    // separator regenerates it from its certificate store if it ever
    // matters again.
    let base_rows = model.num_constrs();
    const CUT_POOL: usize = 120;
    const CUT_KEEP_RECENT: usize = 40;
    fn row_exists(work: &Model, base_rows: usize, coeffs: &[(VarId, f64)], rhs: f64) -> bool {
        work.constrs()[base_rows.min(work.num_constrs())..]
            .iter()
            .any(|c| {
                (c.rhs - rhs).abs() <= 1e-9 && c.coeffs.len() == coeffs.len() && {
                    let mut sorted = coeffs.to_vec();
                    sorted.sort_by_key(|&(v, _)| v);
                    c.coeffs
                        .iter()
                        .zip(&sorted)
                        .all(|(&(v1, a1), &(v2, a2))| v1 == v2 && (a1 - a2).abs() <= 1e-9)
                }
            })
    }
    /// Returns `true` when rows were removed (cut indices shifted, so any
    /// warm-basis snapshot from before the purge is stale).
    fn purge_cuts(work: &mut Model, base_rows: usize, x: &[f64]) -> bool {
        let total = work.num_constrs();
        if total - base_rows <= CUT_POOL {
            return false;
        }
        let decisions: Vec<bool> = (base_rows..total)
            .map(|k| k + CUT_KEEP_RECENT >= total || work.row_slack(&work.constrs()[k], x) <= 1e-6)
            .collect();
        let mut it = decisions.into_iter();
        work.purge_constrs(base_rows, |_| it.next().unwrap_or(true));
        work.num_constrs() != total
    }
    // Max-heap on HeapKey (inverted): we implemented Ord so that pop()
    // yields the smallest-bound node. Node payload must not affect order.
    struct ByKey(HeapKey, Node);
    impl PartialEq for ByKey {
        fn eq(&self, o: &Self) -> bool {
            self.0 == o.0
        }
    }
    impl Eq for ByKey {}
    impl PartialOrd for ByKey {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for ByKey {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.cmp(&o.0)
        }
    }
    let mut heap2: BinaryHeap<ByKey> = BinaryHeap::new();
    heap2.push(ByKey(
        HeapKey(f64::NEG_INFINITY, Reverse(0)),
        Node {
            overrides: vec![],
            bound: f64::NEG_INFINITY,
            depth: 0,
            basis: None,
        },
    ));
    // Cut-purge generation: bumped whenever `purge_cuts` removes rows.
    // Warm-basis snapshots are tagged with the generation they were
    // captured under and only reused while it is current.
    let mut purge_gen: u64 = 0;

    let mut best_bound = f64::NEG_INFINITY;
    // Highest LP objective ever seen at the root (no bound overrides):
    // a monotone global lower bound regardless of later purging.
    let mut root_bound = f64::NEG_INFINITY;
    let mut limit_hit = false;
    // Set alongside `limit_hit` when the limit was the wall clock (real
    // or chaos-injected) rather than nodes/iterations — distinguishes
    // `TimeLimit` from `Feasible`/`Limit` in the final status.
    let mut deadline_expired = false;

    'outer: while let Some(ByKey(_, popped)) = heap2.pop() {
        best_bound = popped.bound.max(f64::NEG_INFINITY);
        // Plunge: after branching, dive straight into one child instead of
        // going back to the heap. Diving reaches integer-feasible leaves
        // orders of magnitude sooner than pure best-first on wide integer
        // ranges, which is where incumbents come from.
        let mut current = Some(popped);
        while let Some(node) = current.take() {
            // Prune against the incumbent. The pruning margin is a quarter
            // of the optimality gap: pruning at the full gap would freeze
            // the incumbent at whatever warm start/cutoff was provided and
            // never collect the improvements inside the band.
            let prune_margin = 0.25 * config.gap_tol * incumbent_obj.abs().max(1.0);
            if node.bound >= incumbent_obj - prune_margin {
                continue 'outer;
            }
            if nodes >= config.node_limit {
                limit_hit = true;
                // Preserve the bound information of the unexplored node.
                heap2.push(ByKey(HeapKey(node.bound, Reverse(node.depth)), node));
                break 'outer;
            }
            if deadline_hit(&start) {
                limit_hit = true;
                deadline_expired = true;
                heap2.push(ByKey(HeapKey(node.bound, Reverse(node.depth)), node));
                break 'outer;
            }
            nodes += 1;

            // Apply this node's bound overrides, recording an undo stack
            // of the displaced bounds: reverting it after the node is
            // O(depth), instead of the O(num_vars) full restore the
            // solver used to pay per node.
            let mut undo: Vec<(VarId, f64, f64)> = Vec::with_capacity(node.overrides.len());
            for &(v, lb, ub) in &node.overrides {
                let old = work.var(v);
                undo.push((v, old.lb, old.ub));
                work.set_bounds(v, lb, ub);
            }
            // The parent's optimal basis seeds this node's first LP; each
            // optimal re-solve refreshes it for the next one.
            let mut node_basis = node.basis.clone();
            let mut candidate = None;
            // Separation loop: re-solve while the separator rejects candidates.
            loop {
                // The cut loop can dwarf a node's LP time; honor the
                // wall-clock budget inside it too.
                if deadline_hit(&start) {
                    limit_hit = true;
                    deadline_expired = true;
                    break;
                }
                // Warm-start from the parent's (or the previous round's)
                // optimal basis, unless a cut purge has invalidated it by
                // deleting rows. The tableau view is only needed for root
                // GMI generation.
                let warm_ref = node_basis
                    .as_ref()
                    .and_then(|(gen, b)| (*gen == purge_gen).then(|| b.as_ref()));
                let out = solve_lp_warm_chaos(
                    &work,
                    &simplex_cfg,
                    warm_ref,
                    node.depth == 0,
                    np_chaos::global(),
                );
                let lp = out.solution;
                let view = out.view;
                if let Some(b) = out.basis {
                    node_basis = Some((purge_gen, Rc::new(b)));
                }
                tally.absorb(&lp);
                match lp.status {
                    LpStatus::Infeasible => break,
                    LpStatus::Unbounded => {
                        if node.depth == 0 && node.overrides.is_empty() {
                            // No overrides were applied, so `work` still
                            // carries the original bounds — nothing to undo.
                            tally.emit(tel, nodes, cuts_added);
                            return MipSolution {
                                status: MipStatus::Unbounded,
                                objective: f64::NEG_INFINITY,
                                x: vec![],
                                best_bound: f64::NEG_INFINITY,
                                nodes,
                                cuts_added,
                                deadline_overshoot_us: tally.deadline_overshoot_us,
                            };
                        }
                        break;
                    }
                    LpStatus::IterationLimit | LpStatus::NumericalFailure => {
                        if std::env::var_os("NP_LP_DEBUG").is_some() {
                            eprintln!(
                                "[np-lp] node depth {} LP {:?} after {} iters, {} rows",
                                node.depth,
                                lp.status,
                                lp.iterations,
                                work.num_constrs()
                            );
                        }
                        // Unknown, not infeasible: abandoning this node as
                        // "pruned" could falsely prove infeasibility, so
                        // surface it as a limit instead. NumericalFailure
                        // lands here only after the simplex exhausted its
                        // whole recovery ladder.
                        limit_hit = true;
                        break;
                    }
                    LpStatus::Optimal => {}
                }
                if node.depth == 0 && node.overrides.is_empty() {
                    root_bound = root_bound.max(lp.objective);
                }
                if lp.objective
                    >= incumbent_obj - 0.25 * config.gap_tol * incumbent_obj.abs().max(1.0)
                {
                    break; // bound-dominated
                }
                // Fractional integer variable?
                let frac = int_vars
                    .iter()
                    .map(|&v| {
                        let xi = lp.x[v.0];
                        (v, xi, (xi - xi.round()).abs())
                    })
                    .filter(|&(_, _, f)| f > config.int_tol)
                    .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
                match frac {
                    Some((v, xi, _)) => {
                        // Root cutting-plane loop: separate *fractional*
                        // optima too (the separator's cuts must be valid for
                        // any point, which Benders feasibility cuts are).
                        // This drives the root bound to the true LP
                        // relaxation of the full problem before any
                        // branching happens.
                        if node.depth == 0 && root_cut_rounds < 200 {
                            if let Some(sep) = separator.as_deref_mut() {
                                // The node LP may have eaten the remaining
                                // budget; don't start a separation round the
                                // deadline no longer covers.
                                if deadline_hit(&start) {
                                    limit_hit = true;
                                    deadline_expired = true;
                                    break;
                                }
                                tally.lazy_callbacks += 1;
                                let cuts = sep(&lp.x);
                                let over = overshoot_us(&start, config.time_limit_secs);
                                let mut added_any = false;
                                if !cuts.is_empty() {
                                    root_cut_rounds += 1;
                                    if purge_cuts(&mut work, base_rows, &lp.x) {
                                        purge_gen += 1;
                                    }
                                    for cut in cuts {
                                        if row_exists(&work, base_rows, &cut.coeffs, cut.rhs) {
                                            continue; // duplicate row: adding it again
                                                      // only degenerates the basis
                                        }
                                        work.add_constr(cut.name, cut.coeffs, cut.sense, cut.rhs);
                                        cuts_added += 1;
                                        added_any = true;
                                    }
                                }
                                // The round blew the deadline: keep the cuts
                                // it paid for, but stop instead of re-solving.
                                if over > 0 {
                                    tally.deadline_overshoot_us += over;
                                    limit_hit = true;
                                    deadline_expired = true;
                                    break;
                                }
                                if added_any {
                                    continue;
                                }
                            }
                        }
                        // Round-up primal heuristic: ceiling the root LP's
                        // integer components often lands on a feasible
                        // point of covering-type problems and gives the
                        // search an incumbent long before any leaf does.
                        if node.depth == 0 && rounding_attempts < 12 {
                            rounding_attempts += 1;
                            let mut rounded = lp.x.clone();
                            for &vi in &int_vars {
                                let ub = work.var(vi).ub;
                                rounded[vi.0] = rounded[vi.0].ceil().min(ub);
                            }
                            // Clamping to a fractional upper bound can leave
                            // a non-integral value: the point is then not a
                            // candidate at all.
                            let integral = int_vars.iter().all(|&vi| {
                                (rounded[vi.0] - rounded[vi.0].round()).abs() <= config.int_tol
                            });
                            let obj = work.objective_value(&rounded);
                            if integral
                                && obj < incumbent_obj - config.gap_tol
                                && work.is_feasible(&rounded, 1e-6)
                            {
                                if separator.is_some()
                                    && start.elapsed().as_secs_f64() > config.time_limit_secs
                                {
                                    // Can't afford the validation round, and
                                    // an unvalidated incumbent is worthless.
                                    limit_hit = true;
                                    deadline_expired = true;
                                    break;
                                }
                                let rejected = separator
                                    .as_deref_mut()
                                    .map(|sep| {
                                        tally.lazy_callbacks += 1;
                                        let cuts = sep(&rounded);
                                        let any = !cuts.is_empty();
                                        for cut in cuts {
                                            work.add_constr(
                                                cut.name, cut.coeffs, cut.sense, cut.rhs,
                                            );
                                            cuts_added += 1;
                                        }
                                        any
                                    })
                                    .unwrap_or(false);
                                let over = overshoot_us(&start, config.time_limit_secs);
                                if !rejected {
                                    incumbent_obj = obj;
                                    incumbent_x = rounded;
                                    tally.incumbent_updates += 1;
                                }
                                if over > 0 {
                                    // Keep the validated incumbent / new rows
                                    // the round produced, then stop.
                                    tally.deadline_overshoot_us += over;
                                    limit_hit = true;
                                    deadline_expired = true;
                                    break;
                                }
                                if rejected {
                                    continue; // new rows: re-solve the root
                                }
                            }
                        }
                        // Root Gomory mixed-integer cuts: globally valid
                        // because they are derived under the original
                        // bounds; they are what actually closes the
                        // integrality gap the Benders rows leave open.
                        if node.depth == 0 && gmi_rounds < 40 {
                            if let Some(view) = &view {
                                let cuts = gomory::generate(&work, view, &is_int, 10, 1e-6);
                                if !cuts.is_empty() {
                                    gmi_rounds += 1;
                                    if purge_cuts(&mut work, base_rows, &lp.x) {
                                        purge_gen += 1;
                                    }
                                    for (k, cut) in cuts.into_iter().enumerate() {
                                        work.add_constr(
                                            format!("gmi_{gmi_rounds}_{k}"),
                                            cut.coeffs,
                                            Sense::Ge,
                                            cut.rhs,
                                        );
                                        cuts_added += 1;
                                        tally.gomory_cuts += 1;
                                    }
                                    continue;
                                }
                            }
                        }
                        // Branch: park the down child on the heap, dive into
                        // the up child (capacity problems are covering-like,
                        // so rounding up is the feasibility direction).
                        let (lb, ub) = current_bounds(&work, v);
                        let down = xi.floor();
                        let up = xi.ceil();
                        if down >= lb - 1e-9 {
                            let mut o = node.overrides.clone();
                            o.push((v, lb, down));
                            heap2.push(ByKey(
                                HeapKey(lp.objective, Reverse(node.depth + 1)),
                                Node {
                                    overrides: o,
                                    bound: lp.objective,
                                    depth: node.depth + 1,
                                    basis: node_basis.clone(),
                                },
                            ));
                        }
                        if up <= ub + 1e-9 {
                            let mut o = node.overrides.clone();
                            o.push((v, up, ub));
                            current = Some(Node {
                                overrides: o,
                                bound: lp.objective,
                                depth: node.depth + 1,
                                basis: node_basis.clone(),
                            });
                        }
                        break;
                    }
                    None => {
                        // Integer feasible: offer to the separator.
                        if let Some(sep) = separator.as_deref_mut() {
                            // Out of budget before validation: the candidate
                            // stays unproven — leave without accepting it.
                            if start.elapsed().as_secs_f64() > config.time_limit_secs {
                                limit_hit = true;
                                deadline_expired = true;
                                break;
                            }
                            tally.lazy_callbacks += 1;
                            let cuts = sep(&lp.x);
                            let over = overshoot_us(&start, config.time_limit_secs);
                            if over > 0 {
                                tally.deadline_overshoot_us += over;
                                limit_hit = true;
                                deadline_expired = true;
                            }
                            if !cuts.is_empty() {
                                if purge_cuts(&mut work, base_rows, &lp.x) {
                                    purge_gen += 1;
                                }
                                let mut added_any = false;
                                for cut in cuts {
                                    if row_exists(&work, base_rows, &cut.coeffs, cut.rhs) {
                                        continue;
                                    }
                                    work.add_constr(cut.name, cut.coeffs, cut.sense, cut.rhs);
                                    cuts_added += 1;
                                    added_any = true;
                                }
                                if added_any {
                                    if limit_hit {
                                        break; // rows kept; no budget to re-solve
                                    }
                                    continue; // re-solve this node with the new rows
                                }
                                // Every returned cut was already a row the LP
                                // point satisfies: numerical stalemate. Treat
                                // the candidate as unproven rather than loop.
                                if std::env::var_os("NP_LP_DEBUG").is_some() {
                                    eprintln!(
                                        "[np-lp] duplicate-cut stalemate at depth {}",
                                        node.depth
                                    );
                                }
                                limit_hit = true;
                                break;
                            }
                        }
                        candidate = Some((lp.objective, lp.x));
                        break;
                    }
                }
            }
            if let Some((obj, x)) = candidate {
                if obj < incumbent_obj {
                    incumbent_obj = obj;
                    incumbent_x = x;
                    tally.incumbent_updates += 1;
                }
            }
            // Revert this node's bound overrides before the next plunge
            // step / heap node. Reverse order so nested overrides of the
            // same variable unwind to the original bounds.
            for &(v, lb, ub) in undo.iter().rev() {
                work.set_bounds(v, lb, ub);
            }
        }
    }

    // The remaining best bound is the smallest bound still in the heap (or
    // the incumbent if the tree is exhausted).
    let remaining = heap2
        .iter()
        .map(|n| n.1.bound)
        .fold(f64::INFINITY, f64::min);
    let mut proven = !limit_hit && remaining.is_infinite();
    if proven {
        best_bound = incumbent_obj;
    } else {
        best_bound = best_bound.max(f64::NEG_INFINITY).min(remaining);
        // Heap bounds are parent-era LP objectives and go stale as lazy
        // cuts accumulate globally. One fresh root LP over the *current*
        // row set is a valid global lower bound and usually much tighter.
        let root = solve_lp(&work, &simplex_cfg);
        tally.absorb(&root);
        if root.status == LpStatus::Optimal {
            best_bound = best_bound.max(root.objective);
        } else if root.status == LpStatus::Infeasible {
            best_bound = incumbent_obj;
        }
        best_bound = best_bound.max(root_bound);
        // Gap-based optimality: same criterion commercial solvers use.
        if incumbent_obj.is_finite()
            && incumbent_obj - best_bound <= config.gap_tol * incumbent_obj.abs().max(1.0)
        {
            proven = true;
            best_bound = best_bound.min(incumbent_obj);
        }
    }
    // Deadline expiry reports `TimeLimit` but never discards the
    // incumbent: a budget-limited caller consumes `x`/`objective` as
    // its best-effort plan.
    let status = if incumbent_x.is_empty() && !incumbent_obj.is_finite() {
        if proven {
            MipStatus::Infeasible
        } else if deadline_expired {
            MipStatus::TimeLimit
        } else {
            MipStatus::Limit
        }
    } else if proven {
        MipStatus::Optimal
    } else if deadline_expired {
        MipStatus::TimeLimit
    } else {
        MipStatus::Feasible
    };
    tally.emit(tel, nodes, cuts_added);
    MipSolution {
        status,
        objective: incumbent_obj,
        x: incumbent_x,
        best_bound,
        nodes,
        cuts_added,
        deadline_overshoot_us: tally.deadline_overshoot_us,
    }
}

fn current_bounds(model: &Model, v: VarId) -> (f64, f64) {
    let var = model.var(v);
    (var.lb, var.ub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(model: &Model) -> MipSolution {
        solve_mip(model, &MipConfig::default(), None)
    }

    #[test]
    fn knapsack_finds_known_optimum() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary →
        // best is a + c (17) vs b + c (20, weight 6 ✓) → 20.
        let mut m = Model::new("knap");
        let a = m.add_var("a", 0.0, 1.0, -10.0, true);
        let b = m.add_var("b", 0.0, 1.0, -13.0, true);
        let c = m.add_var("c", 0.0, 1.0, -7.0, true);
        m.add_constr("w", vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective + 20.0).abs() < 1e-6);
        assert!((s.x[1] - 1.0).abs() < 1e-6 && (s.x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integrality_changes_the_answer() {
        // min x s.t. 2x ≥ 3: LP gives 1.5, MILP must give 2.
        let mut m = Model::new("round");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 2.0)], Sense::Ge, 3.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn already_integral_relaxation_short_circuits() {
        let mut m = Model::new("int");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 4.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_eq!(s.nodes, 1);
        assert!((s.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn detects_integer_infeasibility() {
        // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, MILP infeasible.
        let mut m = Model::new("gapless");
        m.add_var("x", 0.4, 0.6, 1.0, true);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3y + x s.t. x + y ≥ 2.5, y integer, x ∈ [0, 1] → y=2, x=0.5.
        let mut m = Model::new("mix");
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        let y = m.add_var("y", 0.0, 10.0, 3.0, true);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 2.5);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.x[1] - 2.0).abs() < 1e-6);
        assert!((s.objective - 6.5).abs() < 1e-6);
    }

    #[test]
    fn lazy_cuts_reject_candidates_until_valid() {
        // min x, x ∈ [0, 10] integer; the separator insists x ≥ 3 by
        // returning the (globally valid, initially violated) cut.
        let mut m = Model::new("lazy");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let mut calls = 0usize;
        let mut sep = |point: &[f64]| -> Vec<Cut> {
            calls += 1;
            if point[0] < 3.0 - 1e-9 {
                vec![Cut {
                    name: "x>=3".into(),
                    coeffs: vec![(x, 1.0)],
                    sense: Sense::Ge,
                    rhs: 3.0,
                }]
            } else {
                vec![]
            }
        };
        let s = solve_mip(&m, &MipConfig::default(), Some(&mut sep));
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert_eq!(s.cuts_added, 1);
        assert!(
            calls >= 2,
            "separator must see the rejected and final candidates"
        );
    }

    #[test]
    fn cutoff_prunes_to_quick_proof() {
        let mut m = Model::new("cutoff");
        let x = m.add_var("x", 0.0, 100.0, 1.0, true);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 7.0);
        let cfg = MipConfig {
            cutoff: Some(7.0 + 1e-9),
            ..Default::default()
        };
        let s = solve_mip(&m, &cfg, None);
        // The cutoff equals the optimum: search may prune everything and
        // report the cutoff as objective with no x; accept either proven
        // outcome but never a worse objective.
        assert!(s.objective <= 7.0 + 1e-6);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        // A small hard-ish covering problem, then strangle the node budget.
        let mut m = Model::new("cover");
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 1.0, 1.0 + 0.1 * i as f64, true))
            .collect();
        for i in 0..8 {
            let coeffs = vec![
                (vars[i], 1.0),
                (vars[(i + 1) % 8], 1.0),
                (vars[(i + 3) % 8], 1.0),
            ];
            m.add_constr(format!("c{i}"), coeffs, Sense::Ge, 1.0);
        }
        let cfg = MipConfig {
            node_limit: 1,
            ..Default::default()
        };
        let s = solve_mip(&m, &cfg, None);
        assert!(matches!(
            s.status,
            MipStatus::Feasible | MipStatus::Limit | MipStatus::Optimal
        ));
        let full = solve(&m);
        assert_eq!(full.status, MipStatus::Optimal);
        assert!(full.objective <= s.objective + 1e-9);
    }

    #[test]
    fn best_bound_tracks_gap() {
        let mut m = Model::new("gap");
        let x = m.add_var("x", 0.0, 9.0, 1.0, true);
        m.add_constr("c", vec![(x, 3.0)], Sense::Ge, 8.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!(s.gap() < 1e-9);
        assert!((s.best_bound - s.objective).abs() < 1e-9);
    }

    #[test]
    fn gomory_cuts_close_a_pure_covering_gap() {
        // min x + y s.t. 2x + y >= 2, x + 2y >= 2, x,y integer.
        // LP optimum (2/3, 2/3) costs 4/3; the integer optimum costs 2.
        let mut m = Model::new("cover2");
        let x = m.add_var("x", 0.0, 5.0, 1.0, true);
        let y = m.add_var("y", 0.0, 5.0, 1.0, true);
        m.add_constr("c1", vec![(x, 2.0), (y, 1.0)], Sense::Ge, 2.0);
        m.add_constr("c2", vec![(x, 1.0), (y, 2.0)], Sense::Ge, 2.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(
            (s.best_bound - 2.0).abs() < 1e-6,
            "bound must reach the optimum"
        );
    }

    #[test]
    fn wide_integer_ranges_are_handled_by_diving() {
        // A knapsack-cover with ranges up to 1000: plunge diving must
        // find the optimum without exploding the tree.
        let mut m = Model::new("wide");
        let x = m.add_var("x", 0.0, 1000.0, 3.0, true);
        let y = m.add_var("y", 0.0, 1000.0, 5.0, true);
        m.add_constr("c", vec![(x, 2.0), (y, 3.0)], Sense::Ge, 1001.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        // Best: maximize use of x (cost 1.5/unit of coverage vs 1.667):
        // x = 501 covers 1002 (cost 1503) vs x=499,y=1 -> 1001 (1502).
        assert!(
            (s.objective - 1502.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(
            s.nodes < 3000,
            "diving should keep the tree small: {}",
            s.nodes
        );
    }

    #[test]
    fn purging_never_changes_the_answer() {
        // Enough lazy cuts to trigger the pool limit: the separator
        // insists on x >= k for growing k; the final answer is the largest.
        let mut m = Model::new("pool");
        let x = m.add_var("x", 0.0, 500.0, 1.0, true);
        let mut k = 0.0f64;
        let mut sep = |point: &[f64]| -> Vec<Cut> {
            if point[0] < 200.0 - 1e-9 {
                k += 1.0;
                vec![Cut {
                    name: format!("ge{k}"),
                    coeffs: vec![(x, 1.0)],
                    sense: Sense::Ge,
                    rhs: (point[0] + 1.0).min(200.0),
                }]
            } else {
                vec![]
            }
        };
        let s = solve_mip(&m, &MipConfig::default(), Some(&mut sep));
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 200.0).abs() < 1e-6);
        assert!(
            s.cuts_added > 150,
            "the run must have exercised the cut pool"
        );
    }

    #[test]
    fn telemetry_counters_track_the_search() {
        let mut m = Model::new("lazy-tel");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let mut sep = |point: &[f64]| -> Vec<Cut> {
            if point[0] < 3.0 - 1e-9 {
                vec![Cut {
                    name: "x>=3".into(),
                    coeffs: vec![(x, 1.0)],
                    sense: Sense::Ge,
                    rhs: 3.0,
                }]
            } else {
                vec![]
            }
        };
        let tel = np_telemetry::Telemetry::memory();
        let s = solve_mip_telemetry(&m, &MipConfig::default(), Some(&mut sep), &tel);
        assert_eq!(s.status, MipStatus::Optimal);
        use np_telemetry::sys::LP;
        assert_eq!(s.nodes as u64, tel.counter(LP, "bb_nodes"));
        assert_eq!(s.cuts_added as u64, tel.counter(LP, "cuts_added"));
        assert!(tel.counter(LP, "lazy_callbacks") >= 2);
        assert!(tel.counter(LP, "simplex_iterations") >= 1);
        assert!(tel.counter(LP, "incumbent_updates") >= 1);
        let spans = tel.spans();
        assert!(
            spans.iter().any(|(s, n, ..)| s == LP && n == "solve_mip"),
            "solve span missing: {spans:?}"
        );
    }

    #[test]
    fn separation_overshoot_is_detected_and_reported() {
        // A separator that sleeps well past the whole wall-clock budget:
        // the round itself cannot be interrupted, but the solver must
        // notice immediately afterwards (not at the next node boundary),
        // stop, keep the cut it paid for, and report the overshoot.
        let mut m = Model::new("slow-sep");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 2.0)], Sense::Ge, 3.0); // fractional root
        let mut calls = 0usize;
        let mut sep = |point: &[f64]| -> Vec<Cut> {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(40));
            if point[0] < 5.0 - 1e-9 {
                vec![Cut {
                    name: "x>=5".into(),
                    coeffs: vec![(x, 1.0)],
                    sense: Sense::Ge,
                    rhs: 5.0,
                }]
            } else {
                vec![]
            }
        };
        let cfg = MipConfig {
            time_limit_secs: 0.005,
            ..Default::default()
        };
        let tel = np_telemetry::Telemetry::memory();
        let s = solve_mip_telemetry(&m, &cfg, Some(&mut sep), &tel);
        use np_telemetry::sys::LP;
        let over = tel.counter(LP, "deadline_overshoot_us");
        assert!(over > 0, "the blown round must be reported: {over}");
        assert_eq!(
            s.deadline_overshoot_us, over,
            "the solution must carry the same overshoot the counter reports"
        );
        assert_eq!(calls, 1, "no further separation after the deadline");
        assert_eq!(s.cuts_added, 1, "the paid-for cut is kept");
        assert_eq!(
            s.status,
            MipStatus::TimeLimit,
            "a deadline-limited run reports TimeLimit, not a proof"
        );
    }

    #[test]
    fn deadline_expiry_returns_the_incumbent_with_time_limit_status() {
        // min x + y s.t. 3x + 3y ≥ 8, integers: LP bound 8/3, optimum 3.
        // The root rounding heuristic finds the incumbent; the second
        // separator call then blows the whole wall budget. The solver
        // must return that incumbent with `TimeLimit`, not discard it.
        let mut m = Model::new("anytime");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let y = m.add_var("y", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 3.0), (y, 3.0)], Sense::Ge, 8.0);
        let mut calls = 0usize;
        let mut sep = |_point: &[f64]| -> Vec<Cut> {
            calls += 1;
            if calls > 1 {
                std::thread::sleep(std::time::Duration::from_millis(80));
            }
            vec![]
        };
        let cfg = MipConfig {
            time_limit_secs: 0.04,
            ..Default::default()
        };
        let s = solve_mip(&m, &cfg, Some(&mut sep));
        assert_eq!(s.status, MipStatus::TimeLimit);
        assert!(!s.x.is_empty(), "the incumbent point must be returned");
        assert!((s.objective - 3.0).abs() < 1e-6, "obj {}", s.objective);
        assert!(s.deadline_overshoot_us > 0);
        assert!(s.gap() > 0.0, "the proof was genuinely incomplete");
    }

    #[test]
    fn zero_budget_reports_time_limit_with_no_incumbent() {
        let mut m = Model::new("hopeless");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c", vec![(x, 2.0)], Sense::Ge, 3.0);
        let cfg = MipConfig {
            time_limit_secs: 0.0,
            ..Default::default()
        };
        let s = solve_mip(&m, &cfg, None);
        assert_eq!(s.status, MipStatus::TimeLimit);
        assert!(s.x.is_empty());
        assert!(s.objective.is_infinite());
    }

    #[test]
    fn infinite_budget_never_reports_overshoot() {
        let mut m = Model::new("lazy-unbudgeted");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let mut sep = |point: &[f64]| -> Vec<Cut> {
            if point[0] < 3.0 - 1e-9 {
                vec![Cut {
                    name: "x>=3".into(),
                    coeffs: vec![(x, 1.0)],
                    sense: Sense::Ge,
                    rhs: 3.0,
                }]
            } else {
                vec![]
            }
        };
        let tel = np_telemetry::Telemetry::memory();
        let s = solve_mip_telemetry(&m, &MipConfig::default(), Some(&mut sep), &tel);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_eq!(
            tel.counter(np_telemetry::sys::LP, "deadline_overshoot_us"),
            0
        );
    }

    #[test]
    fn equality_constrained_mip() {
        // x + y = 7, x,y ≥ 0 integer, min 2x + 3y → x=7, y=0.
        let mut m = Model::new("eqmip");
        let x = m.add_var("x", 0.0, 10.0, 2.0, true);
        let y = m.add_var("y", 0.0, 10.0, 3.0, true);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 7.0);
        let s = solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 14.0).abs() < 1e-6);
    }
}
