//! LU-factorized basis for the sparse revised simplex.
//!
//! The basis matrix `B` (the basic columns of the CSC constraint matrix)
//! is factorized as `P·B = L·U` by a left-looking sparse LU with partial
//! pivoting. Between refactorizations, pivots append product-form eta
//! vectors (the Forrest–Tomlin-style cheap update: reuse the FTRAN'd
//! entering column as the elementary transform) instead of reworking the
//! factors; FTRAN/BTRAN apply the LU solve followed by the eta file.
//! The eta file is cleared on every refactorization, which the driver
//! triggers periodically (`SimplexConfig::refactor_every`) and whenever a
//! pivot looks numerically unsafe.

use crate::sparse::CscMatrix;

/// Error: the basis matrix is numerically singular (no acceptable pivot
/// in some elimination column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularBasis;

impl std::fmt::Display for SingularBasis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("numerically singular basis")
    }
}

impl std::error::Error for SingularBasis {}

/// One product-form eta transform, recorded at a pivot on row `r` with
/// the FTRAN'd entering column `t` (`col` holds the off-pivot nonzeros).
#[derive(Clone, Debug)]
struct Eta {
    r: usize,
    pivot: f64,
    col: Vec<(usize, f64)>,
}

/// Sparse LU factors of the basis, `P·B = L·U`.
///
/// `L` is unit-lower-triangular with columns indexed by elimination
/// position but entries stored by *original* row index; `U` is
/// upper-triangular in position space with its diagonal split out.
#[derive(Clone, Debug, Default)]
struct Lu {
    /// Permutation: elimination position → original row.
    rowp: Vec<usize>,
    /// Inverse permutation: original row → elimination position.
    rowp_inv: Vec<usize>,
    /// Column `j` of `L` below the diagonal: `(orig_row, value)`.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal: `(position, value)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` by position.
    udiag: Vec<f64>,
}

/// The factorized-basis engine: LU factors plus the eta file, with the
/// telemetry counters the solver reports (`lp.refactorizations`,
/// `lp.eta_len`).
#[derive(Clone, Debug)]
pub struct SparseBasis {
    m: usize,
    lu: Lu,
    etas: Vec<Eta>,
    /// Number of factorizations performed over the engine's lifetime.
    pub refactorizations: u64,
    /// Longest eta file seen between refactorizations.
    pub peak_eta_len: u64,
}

impl SparseBasis {
    /// An engine for an `m`-row tableau (not yet factorized).
    pub fn new(m: usize) -> SparseBasis {
        SparseBasis {
            m,
            lu: Lu::default(),
            etas: Vec::new(),
            refactorizations: 0,
            peak_eta_len: 0,
        }
    }

    /// Current eta-file length.
    pub fn eta_len(&self) -> usize {
        self.etas.len()
    }

    /// Factorize the basis given by `basis[r]` = column of row `r`,
    /// clearing the eta file. Fails on a (numerically) singular basis.
    pub fn refactorize(&mut self, cols: &CscMatrix, basis: &[usize]) -> Result<(), SingularBasis> {
        let m = self.m;
        debug_assert_eq!(basis.len(), m);
        self.etas.clear();
        self.refactorizations += 1;
        let scale = cols.scale_of(basis);
        let singular_tol = 1e-13 * scale;

        // Left-looking elimination with a dense work column. `pos_of[i]`
        // is the elimination position an original row was pivoted to, or
        // usize::MAX while still unpivoted.
        let mut pos_of = vec![usize::MAX; m];
        let mut rowp = Vec::with_capacity(m);
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut udiag = Vec::with_capacity(m);
        let mut work = vec![0.0f64; m]; // indexed by original row
        let mut in_col = vec![false; m]; // membership marker for `touched`
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for (k, &bj) in basis.iter().enumerate() {
            // Scatter column k of B.
            for &i in &touched {
                work[i] = 0.0;
                in_col[i] = false;
            }
            touched.clear();
            for (i, v) in cols.col(bj) {
                if v != 0.0 && !in_col[i] {
                    in_col[i] = true;
                    touched.push(i);
                }
                work[i] += v;
            }
            // Apply the existing L columns in elimination order: for each
            // pivoted position j with a nonzero multiplier row, eliminate.
            // Positions must be visited ascending; collect & sort the
            // pivoted positions present in the work vector lazily by
            // walking 0..k and probing the pivot row — for our instance
            // sizes (m up to a few thousand, basis columns with a handful
            // of nonzeros) the simple walk is dominated by the probe cost
            // of the dense work array.
            let mut urow: Vec<(usize, f64)> = Vec::new();
            for j in 0..k {
                let piv_row = rowp[j];
                let zj = work[piv_row];
                if zj == 0.0 {
                    continue;
                }
                urow.push((j, zj));
                work[piv_row] = 0.0;
                for &(i, lv) in &lcols[j] {
                    if !in_col[i] {
                        in_col[i] = true;
                        touched.push(i);
                    }
                    work[i] -= lv * zj;
                }
            }
            // Partial pivoting over the unpivoted rows.
            let mut best_row = usize::MAX;
            let mut best = 0.0f64;
            for &i in &touched {
                if pos_of[i] == usize::MAX && work[i].abs() > best {
                    best = work[i].abs();
                    best_row = i;
                }
            }
            if best_row == usize::MAX || best < singular_tol {
                return Err(SingularBasis);
            }
            let pivot = work[best_row];
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &i in &touched {
                if pos_of[i] == usize::MAX && i != best_row && work[i] != 0.0 {
                    lcol.push((i, work[i] / pivot));
                }
            }
            lcol.sort_unstable_by_key(|&(i, _)| i);
            pos_of[best_row] = k;
            rowp.push(best_row);
            lcols.push(lcol);
            ucols.push(urow);
            udiag.push(pivot);
            // Reset the work vector for the next column.
            for &i in &touched {
                work[i] = 0.0;
                in_col[i] = false;
            }
            touched.clear();
        }

        let mut rowp_inv = vec![0usize; m];
        for (k, &i) in rowp.iter().enumerate() {
            rowp_inv[i] = k;
        }
        self.lu = Lu {
            rowp,
            rowp_inv,
            lcols,
            ucols,
            udiag,
        };
        Ok(())
    }

    /// Solve `B·x = a` where `a` is given by sparse `(row, value)`
    /// entries; the result is dense, indexed by basis *position*.
    pub fn ftran_sparse(&self, entries: impl IntoIterator<Item = (usize, f64)>) -> Vec<f64> {
        let mut w = vec![0.0f64; self.m];
        for (i, v) in entries {
            w[i] += v;
        }
        self.ftran_in_place(&mut w);
        w
    }

    /// Solve `B·x = a` for dense `a` (indexed by original row); the
    /// result is dense, indexed by basis position.
    pub fn ftran_dense(&self, a: &[f64]) -> Vec<f64> {
        let mut w = a.to_vec();
        self.ftran_in_place(&mut w);
        w
    }

    /// In-place FTRAN: `w` enters indexed by original row, leaves indexed
    /// by basis position.
    fn ftran_in_place(&self, w: &mut [f64]) {
        let m = self.m;
        let lu = &self.lu;
        // Forward solve L·z = P·a, z in position space. z_j is read from
        // the pivot row of position j after earlier eliminations applied.
        let mut z = vec![0.0f64; m];
        for j in 0..m {
            let zj = w[lu.rowp[j]];
            z[j] = zj;
            if zj != 0.0 {
                for &(i, lv) in &lu.lcols[j] {
                    w[i] -= lv * zj;
                }
            }
        }
        // Backward solve U·x = z, both in position space; reuse w.
        for k in (0..m).rev() {
            let xk = z[k] / lu.udiag[k];
            w[k] = xk;
            if xk != 0.0 {
                for &(j, uv) in &lu.ucols[k] {
                    z[j] -= uv * xk;
                }
            }
        }
        // Eta file, oldest first.
        for eta in &self.etas {
            let vr = w[eta.r] / eta.pivot;
            if vr != 0.0 {
                for &(i, t) in &eta.col {
                    w[i] -= t * vr;
                }
            }
            w[eta.r] = vr;
        }
    }

    /// Solve `Bᵀ·y = c` where `c` is indexed by basis position; the
    /// result is dense, indexed by original row.
    pub fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut z = c.to_vec();
        // Eta file transposed, newest first.
        for eta in self.etas.iter().rev() {
            let mut acc = z[eta.r];
            for &(i, t) in &eta.col {
                acc -= t * z[i];
            }
            z[eta.r] = acc / eta.pivot;
        }
        let lu = &self.lu;
        // Forward solve Uᵀ·v = z in position space.
        for k in 0..m {
            let mut acc = z[k];
            for &(j, uv) in &lu.ucols[k] {
                acc -= uv * z[j];
            }
            z[k] = acc / lu.udiag[k];
        }
        // Backward solve Lᵀ, then undo the permutation: y[rowp[j]] = v_j.
        let mut y = vec![0.0f64; m];
        for j in (0..m).rev() {
            let mut acc = z[j];
            for &(i, lv) in &lu.lcols[j] {
                acc -= lv * z[lu.rowp_inv[i]];
            }
            z[j] = acc;
            y[lu.rowp[j]] = acc;
        }
        y
    }

    /// Row `r` of `B⁻¹`: solve `Bᵀ·y = e_r` (position space) — the
    /// pricing vector of the dual simplex.
    pub fn btran_unit(&self, r: usize) -> Vec<f64> {
        let mut e = vec![0.0f64; self.m];
        e[r] = 1.0;
        self.btran(&e)
    }

    /// Record the pivot (row `r`, FTRAN'd entering column `t`) as an eta
    /// transform. `t[r]` must already have passed the driver's pivot
    /// guard.
    pub fn update(&mut self, r: usize, t: &[f64]) {
        let col: Vec<(usize, f64)> = t
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            r,
            pivot: t[r],
            col,
        });
        self.peak_eta_len = self.peak_eta_len.max(self.etas.len() as u64);
    }

    /// Materialize `B⁻¹` row-major (`binv[r*m + i]`), as the dense
    /// backend stores it — used only to synthesize a [`crate::simplex::TableauView`]
    /// for Gomory cut generation at the B&B root.
    pub fn dense_binv(&self) -> Vec<f64> {
        let m = self.m;
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            // Column i of B^-1 is FTRAN(e_i); scatter into row-major.
            let mut e = vec![0.0f64; m];
            e[i] = 1.0;
            self.ftran_in_place(&mut e);
            for r in 0..m {
                binv[r * m + i] = e[r];
            }
        }
        binv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    fn dense_mat(m: usize, entries: &[&[f64]]) -> CscMatrix {
        // entries[j] is column j, dense.
        let mut csc = CscMatrix::with_capacity(m, entries.len(), m * entries.len());
        for col in entries {
            csc.push_col(
                col.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i, v)),
            );
        }
        csc
    }

    fn mat_vec(m: usize, cols: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (r, &j) in basis.iter().enumerate() {
            for (i, v) in cols.col(j) {
                out[i] += v * x[r];
            }
        }
        out
    }

    #[test]
    fn lu_solves_match_the_matrix() {
        // A 4x4 basis needing row pivoting (first column's largest entry
        // is not on the diagonal).
        let cols = dense_mat(
            4,
            &[
                &[0.0, 2.0, 1.0, 0.0],
                &[3.0, 0.0, 0.0, 1.0],
                &[1.0, 1.0, 4.0, 0.0],
                &[0.0, 0.5, 0.0, 2.0],
            ],
        );
        let basis = [0usize, 1, 2, 3];
        let mut eng = SparseBasis::new(4);
        eng.refactorize(&cols, &basis).expect("nonsingular");

        // FTRAN: B x = a.
        let a = [1.0, -2.0, 0.5, 3.0];
        let x = eng.ftran_dense(&a);
        let back = mat_vec(4, &cols, &basis, &x);
        for i in 0..4 {
            assert!((back[i] - a[i]).abs() < 1e-10, "ftran row {i}");
        }

        // BTRAN: B^T y = c (c in position space).
        let c = [0.3, 1.0, -1.5, 2.0];
        let y = eng.btran(&c);
        for (r, &j) in basis.iter().enumerate() {
            let dot: f64 = cols.col(j).map(|(i, v)| v * y[i]).sum();
            assert!((dot - c[r]).abs() < 1e-10, "btran position {r}");
        }
    }

    #[test]
    fn eta_update_tracks_a_column_swap() {
        let cols = dense_mat(
            3,
            &[
                &[2.0, 0.0, 1.0],
                &[0.0, 1.0, 0.0],
                &[0.0, 0.0, 3.0],
                &[1.0, 1.0, 1.0], // candidate entering column
            ],
        );
        let mut basis = vec![0usize, 1, 2];
        let mut eng = SparseBasis::new(3);
        eng.refactorize(&cols, &basis).unwrap();

        // Pivot column 3 into row 1 via the eta update.
        let t = eng.ftran_sparse(cols.col(3));
        eng.update(1, &t);
        basis[1] = 3;
        assert_eq!(eng.eta_len(), 1);

        // The updated engine must solve with the *new* basis matrix.
        let a = [1.0, 2.0, 3.0];
        let x = eng.ftran_dense(&a);
        let back = mat_vec(3, &cols, &basis, &x);
        for i in 0..3 {
            assert!((back[i] - a[i]).abs() < 1e-10, "post-eta ftran row {i}");
        }
        let c = [1.0, -1.0, 0.5];
        let y = eng.btran(&c);
        for (r, &j) in basis.iter().enumerate() {
            let dot: f64 = cols.col(j).map(|(i, v)| v * y[i]).sum();
            assert!((dot - c[r]).abs() < 1e-10, "post-eta btran position {r}");
        }

        // A fresh factorization of the updated basis agrees and clears
        // the eta file.
        let mut fresh = SparseBasis::new(3);
        fresh.refactorize(&cols, &basis).unwrap();
        let x2 = fresh.ftran_dense(&a);
        for r in 0..3 {
            assert!((x2[r] - x[r]).abs() < 1e-10);
        }
        assert_eq!(fresh.eta_len(), 0);
    }

    #[test]
    fn singular_basis_is_rejected() {
        let cols = dense_mat(2, &[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut eng = SparseBasis::new(2);
        assert!(eng.refactorize(&cols, &[0, 1]).is_err());
    }

    #[test]
    fn dense_binv_matches_unit_solves() {
        let cols = dense_mat(3, &[&[4.0, 1.0, 0.0], &[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0]]);
        let basis = [0usize, 1, 2];
        let mut eng = SparseBasis::new(3);
        eng.refactorize(&cols, &basis).unwrap();
        let binv = eng.dense_binv();
        // B * B^-1 = I, checked column by column of B^-1.
        for i in 0..3 {
            let xi: Vec<f64> = (0..3).map(|r| binv[r * 3 + i]).collect();
            let back = mat_vec(3, &cols, &basis, &xi);
            for (r, &b) in back.iter().enumerate() {
                let want = if r == i { 1.0 } else { 0.0 };
                assert!((b - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn empty_basis_is_fine() {
        let cols = CscMatrix::with_capacity(0, 0, 0);
        let mut eng = SparseBasis::new(0);
        eng.refactorize(&cols, &[]).unwrap();
        assert!(eng.ftran_dense(&[]).is_empty());
        assert!(eng.btran(&[]).is_empty());
    }
}
