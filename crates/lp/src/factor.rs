//! LU-factorized basis for the sparse revised simplex.
//!
//! The basis matrix `B` (the basic columns of the CSC constraint matrix)
//! is factorized as `P·B·Q = L·U` by a left-looking sparse LU with
//! partial pivoting and a Markowitz-style static column pre-ordering
//! (sparsest basis columns eliminated first, which is what keeps the
//! factors from filling in on the master's wide cut rows). Between
//! refactorizations, pivots append product-form eta vectors (the
//! Forrest–Tomlin-style cheap update: reuse the FTRAN'd entering column
//! as the elementary transform) instead of reworking the factors;
//! FTRAN/BTRAN apply the LU solve followed by the eta file. Triangular
//! solves go hyper-sparse when the right-hand side is sparse enough: a
//! position heap visits exactly the nonzero pattern in elimination
//! order, performing bit-identical arithmetic to the dense probe loops.
//!
//! The eta file is cleared on every refactorization. The driver decides
//! *when* to refactorize from this engine's own accounting
//! ([`SparseBasis::should_refactor`]): the trigger fires on eta-file
//! growth (length reaching `refactor_every`) or fill-in (accumulated
//! eta nonzeros outweighing the LU factors themselves), never on a
//! pivot-count schedule — a warm-started solve that performs two pivots
//! must not pay a cold factorization price.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sparse::CscMatrix;

/// Error: the basis matrix is numerically singular (no acceptable pivot
/// in some elimination column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularBasis;

impl std::fmt::Display for SingularBasis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("numerically singular basis")
    }
}

impl std::error::Error for SingularBasis {}

/// One product-form eta transform, recorded at a pivot on row `r` with
/// the FTRAN'd entering column `t` (`col` holds the off-pivot nonzeros).
#[derive(Clone, Debug)]
struct Eta {
    r: usize,
    pivot: f64,
    col: Vec<(usize, f64)>,
}

/// Sparse LU factors of the basis, `P·B·Q = L·U`.
///
/// `L` is unit-lower-triangular with columns indexed by elimination
/// position but entries stored by *original* row index; `U` is
/// upper-triangular in position space with its diagonal split out.
/// `colp` is the Markowitz column pre-ordering: elimination position
/// `k` factorized basis column `colp[k]`, so solve results are mapped
/// back through it to basis-position space.
#[derive(Clone, Debug, Default)]
struct Lu {
    /// Permutation: elimination position → original row.
    rowp: Vec<usize>,
    /// Inverse permutation: original row → elimination position.
    rowp_inv: Vec<usize>,
    /// Column permutation: elimination position → basis position.
    colp: Vec<usize>,
    /// Column `j` of `L` below the diagonal: `(orig_row, value)`.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal: `(position, value)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` by position.
    udiag: Vec<f64>,
}

/// Reusable solve workspace: heaps and marker arrays for the
/// hyper-sparse paths, plus the dense intermediate vector, so the
/// thousands of FTRAN/BTRAN calls per solve do not each pay a malloc.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// Dense intermediate (position space), kept zeroed between calls.
    z: Vec<f64>,
    /// Min-heap of positions for the forward (L) solve.
    lo: BinaryHeap<Reverse<usize>>,
    /// Max-heap of positions for the backward (U) solve.
    hi: BinaryHeap<usize>,
    /// Position-space membership marker for the heaps.
    queued: Vec<bool>,
    /// Positions whose `z` entry was written (to re-zero cheaply).
    touched: Vec<usize>,
}

/// Below this fill ratio (input nonzeros × the factor vs. `m`) the
/// triangular solves walk the nonzero pattern through a heap instead of
/// probing every position. The arithmetic is identical either way —
/// positions are visited in the same elimination order — so the switch
/// is purely a cost model.
const HYPER_SPARSE_FACTOR: usize = 8;

/// The factorized-basis engine: LU factors plus the eta file, with the
/// telemetry counters the solver reports (`lp.refactorizations`,
/// `lp.eta_len`).
#[derive(Clone, Debug)]
pub struct SparseBasis {
    m: usize,
    lu: Lu,
    etas: Vec<Eta>,
    /// Nonzeros currently stored in the LU factors (L + U + diagonal).
    lu_nnz: usize,
    /// Accumulated off-pivot nonzeros in the eta file.
    eta_nnz: usize,
    /// Number of factorizations performed over the engine's lifetime.
    pub refactorizations: u64,
    /// Longest eta file seen between refactorizations.
    pub peak_eta_len: u64,
    scratch: RefCell<Scratch>,
}

impl SparseBasis {
    /// An engine for an `m`-row tableau (not yet factorized).
    pub fn new(m: usize) -> SparseBasis {
        SparseBasis {
            m,
            lu: Lu::default(),
            etas: Vec::new(),
            lu_nnz: 0,
            eta_nnz: 0,
            refactorizations: 0,
            peak_eta_len: 0,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Current eta-file length.
    pub fn eta_len(&self) -> usize {
        self.etas.len()
    }

    /// Install the factors of a signed-diagonal basis (the all-artificial
    /// phase-1 start, where column `r` is `±e_r`) directly — no
    /// elimination, no refactorization counted: there is no work a
    /// counter should bill for.
    pub fn factor_signed_identity(&mut self, signs: &[f64]) {
        let m = self.m;
        debug_assert_eq!(signs.len(), m);
        self.etas.clear();
        self.eta_nnz = 0;
        self.lu = Lu {
            rowp: (0..m).collect(),
            rowp_inv: (0..m).collect(),
            colp: (0..m).collect(),
            lcols: vec![Vec::new(); m],
            ucols: vec![Vec::new(); m],
            udiag: signs.to_vec(),
        };
        self.lu_nnz = m;
    }

    /// Should the driver refactorize now? Fires on eta-file *growth*
    /// (`refactor_every` transforms accumulated — the numerical-drift
    /// bound the knob always meant) or on *fill-in* (the eta file
    /// carrying more nonzeros than the LU factors themselves, at which
    /// point every FTRAN pays more for the updates than for a fresh
    /// factorization's solve). A pivot-count schedule would charge
    /// warm-started two-pivot solves a cold factorization price — the
    /// 109-vs-99 refactorization bug this replaced.
    pub fn should_refactor(&self, refactor_every: usize) -> bool {
        self.etas.len() >= refactor_every.max(1)
            || self.eta_nnz > self.lu_nnz.max(8 * self.m.max(1))
    }

    /// Factorize the basis given by `basis[r]` = column of row `r`,
    /// clearing the eta file. Fails on a (numerically) singular basis.
    pub fn refactorize(&mut self, cols: &CscMatrix, basis: &[usize]) -> Result<(), SingularBasis> {
        let m = self.m;
        debug_assert_eq!(basis.len(), m);
        self.etas.clear();
        self.eta_nnz = 0;
        self.refactorizations += 1;
        let scale = cols.scale_of(basis);
        let singular_tol = 1e-13 * scale;

        // Markowitz-style static pre-ordering: eliminate the sparsest
        // basis columns first (stable on ties), which empirically keeps
        // fill-in low on the master's mix of unit logical columns and
        // wide cut rows without the bookkeeping of a dynamic ordering.
        let mut colp: Vec<usize> = (0..m).collect();
        colp.sort_by_key(|&c| (cols.col_nnz(basis[c]), c));

        // Left-looking elimination with a dense work column. `pos_of[i]`
        // is the elimination position an original row was pivoted to, or
        // usize::MAX while still unpivoted.
        let mut pos_of = vec![usize::MAX; m];
        let mut rowp = Vec::with_capacity(m);
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut udiag = Vec::with_capacity(m);
        let mut work = vec![0.0f64; m]; // indexed by original row
        let mut in_col = vec![false; m]; // membership marker for `touched`
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        // Pivoted positions present in the work column, visited in
        // ascending elimination order through a min-heap: fill-in from
        // an elimination at position j can only touch positions > j, so
        // the heap walks exactly the symbolic pattern instead of probing
        // all 0..k positions per column.
        let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::with_capacity(m);
        let mut queued = vec![false; m];
        let mut lu_nnz = m; // the diagonal

        for (k, &c) in colp.iter().enumerate() {
            // Scatter column colp[k] of B.
            for (i, v) in cols.col(basis[c]) {
                if v != 0.0 && !in_col[i] {
                    in_col[i] = true;
                    touched.push(i);
                    let p = pos_of[i];
                    if p != usize::MAX && !queued[p] {
                        queued[p] = true;
                        heap.push(Reverse(p));
                    }
                }
                work[i] += v;
            }
            // Apply the existing L columns in ascending elimination order.
            let mut urow: Vec<(usize, f64)> = Vec::new();
            while let Some(Reverse(j)) = heap.pop() {
                queued[j] = false;
                let piv_row = rowp[j];
                let zj = work[piv_row];
                if zj == 0.0 {
                    continue;
                }
                urow.push((j, zj));
                work[piv_row] = 0.0;
                for &(i, lv) in &lcols[j] {
                    if !in_col[i] {
                        in_col[i] = true;
                        touched.push(i);
                        let p = pos_of[i];
                        if p != usize::MAX && !queued[p] {
                            queued[p] = true;
                            heap.push(Reverse(p));
                        }
                    }
                    work[i] -= lv * zj;
                }
            }
            // Partial pivoting over the unpivoted rows.
            let mut best_row = usize::MAX;
            let mut best = 0.0f64;
            for &i in &touched {
                if pos_of[i] == usize::MAX && work[i].abs() > best {
                    best = work[i].abs();
                    best_row = i;
                }
            }
            if best_row == usize::MAX || best < singular_tol {
                return Err(SingularBasis);
            }
            let pivot = work[best_row];
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &i in &touched {
                if pos_of[i] == usize::MAX && i != best_row && work[i] != 0.0 {
                    lcol.push((i, work[i] / pivot));
                }
            }
            lcol.sort_unstable_by_key(|&(i, _)| i);
            lu_nnz += lcol.len() + urow.len();
            pos_of[best_row] = k;
            rowp.push(best_row);
            lcols.push(lcol);
            ucols.push(urow);
            udiag.push(pivot);
            // Reset the work vector for the next column.
            for &i in &touched {
                work[i] = 0.0;
                in_col[i] = false;
            }
            touched.clear();
        }

        let mut rowp_inv = vec![0usize; m];
        for (k, &i) in rowp.iter().enumerate() {
            rowp_inv[i] = k;
        }
        self.lu = Lu {
            rowp,
            rowp_inv,
            colp,
            lcols,
            ucols,
            udiag,
        };
        self.lu_nnz = lu_nnz;
        Ok(())
    }

    /// Solve `B·x = a` where `a` is given by sparse `(row, value)`
    /// entries; the result is dense, indexed by basis *position*.
    pub fn ftran_sparse(&self, entries: impl IntoIterator<Item = (usize, f64)>) -> Vec<f64> {
        let mut w = vec![0.0f64; self.m];
        let mut nnz = 0usize;
        for (i, v) in entries {
            w[i] += v;
            nnz += 1;
        }
        self.ftran_in_place_hint(&mut w, nnz);
        w
    }

    /// Solve `B·x = a` for dense `a` (indexed by original row); the
    /// result is dense, indexed by basis position.
    pub fn ftran_dense(&self, a: &[f64]) -> Vec<f64> {
        let mut w = a.to_vec();
        self.ftran_in_place(&mut w);
        w
    }

    /// In-place FTRAN: `w` enters indexed by original row, leaves indexed
    /// by basis position.
    fn ftran_in_place(&self, w: &mut [f64]) {
        self.ftran_in_place_hint(w, self.m);
    }

    fn ftran_in_place_hint(&self, w: &mut [f64], nnz_hint: usize) {
        let m = self.m;
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        if s.z.len() != m {
            s.z = vec![0.0f64; m];
            s.queued = vec![false; m];
        }
        if nnz_hint.saturating_mul(HYPER_SPARSE_FACTOR) < m {
            self.ftran_hyper_sparse(w, s);
        } else {
            self.ftran_dense_probe(w, &mut s.z);
        }
        // Eta file, oldest first (entirely in basis-position space).
        for eta in &self.etas {
            let vr = w[eta.r] / eta.pivot;
            if vr != 0.0 {
                for &(i, t) in &eta.col {
                    w[i] -= t * vr;
                }
            }
            w[eta.r] = vr;
        }
    }

    /// Dense-probe LU solve: O(m) walks over every position. `z` is a
    /// borrowed scratch vector (fully overwritten, left as-is).
    fn ftran_dense_probe(&self, w: &mut [f64], z: &mut [f64]) {
        let m = self.m;
        let lu = &self.lu;
        // Forward solve L·z = P·a, z in position space. z_j is read from
        // the pivot row of position j after earlier eliminations applied.
        for j in 0..m {
            let zj = w[lu.rowp[j]];
            z[j] = zj;
            if zj != 0.0 {
                for &(i, lv) in &lu.lcols[j] {
                    w[i] -= lv * zj;
                }
            }
        }
        // Backward solve U·x = z, mapped to basis-position space through
        // the column ordering: elimination position k is basis position
        // colp[k].
        for k in (0..m).rev() {
            let xk = z[k] / lu.udiag[k];
            w[lu.colp[k]] = xk;
            if xk != 0.0 {
                for &(j, uv) in &lu.ucols[k] {
                    z[j] -= uv * xk;
                }
            }
        }
        // Re-zero scratch for the next hyper-sparse caller.
        for v in z.iter_mut() {
            *v = 0.0;
        }
    }

    /// Hyper-sparse LU solve: identical arithmetic to
    /// [`Self::ftran_dense_probe`] (positions visited in the same
    /// elimination order), but only the nonzero pattern is walked.
    /// Requires `s.z` zeroed on entry; leaves it zeroed.
    fn ftran_hyper_sparse(&self, w: &mut [f64], s: &mut Scratch) {
        let lu = &self.lu;
        debug_assert!(s.lo.is_empty() && s.hi.is_empty());
        s.touched.clear();
        // Seed the forward worklist with the positions of nonzero input
        // rows.
        for (i, &v) in w.iter().enumerate() {
            if v != 0.0 {
                let j = lu.rowp_inv[i];
                if !s.queued[j] {
                    s.queued[j] = true;
                    s.lo.push(Reverse(j));
                }
            }
        }
        // Forward solve L·z = P·a on the pattern, ascending positions.
        while let Some(Reverse(j)) = s.lo.pop() {
            s.queued[j] = false;
            let zj = w[lu.rowp[j]];
            if zj == 0.0 {
                continue;
            }
            s.z[j] = zj;
            s.touched.push(j);
            for &(i, lv) in &lu.lcols[j] {
                let p = lu.rowp_inv[i];
                // L is unit lower triangular: fill lands at p > j only.
                if !s.queued[p] && s.z[p] == 0.0 && w[i] == 0.0 {
                    s.queued[p] = true;
                    s.lo.push(Reverse(p));
                }
                w[i] -= lv * zj;
            }
        }
        // The input rows have served their purpose; the result lands in
        // basis-position space, so clear the row-indexed remnants.
        w[..self.m].fill(0.0);
        // Backward solve U·x = z on the pattern, descending positions.
        for &j in &s.touched {
            if !s.queued[j] {
                s.queued[j] = true;
                s.hi.push(j);
            }
        }
        while let Some(k) = s.hi.pop() {
            s.queued[k] = false;
            let zk = s.z[k];
            s.z[k] = 0.0;
            if zk == 0.0 {
                continue;
            }
            let xk = zk / lu.udiag[k];
            w[lu.colp[k]] = xk;
            if xk != 0.0 {
                for &(j, uv) in &lu.ucols[k] {
                    if !s.queued[j] && s.z[j] == 0.0 {
                        s.queued[j] = true;
                        s.hi.push(j);
                    }
                    s.z[j] -= uv * xk;
                }
            }
        }
        s.touched.clear();
    }

    /// Solve `Bᵀ·y = c` where `c` is indexed by basis position; the
    /// result is dense, indexed by original row.
    pub fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut z = c.to_vec();
        // Eta file transposed, newest first (basis-position space).
        for eta in self.etas.iter().rev() {
            let mut acc = z[eta.r];
            for &(i, t) in &eta.col {
                acc -= t * z[i];
            }
            z[eta.r] = acc / eta.pivot;
        }
        let lu = &self.lu;
        // Map basis-position space to elimination-position space.
        let mut zp = vec![0.0f64; m];
        for k in 0..m {
            zp[k] = z[lu.colp[k]];
        }
        // Forward solve Uᵀ·v = zp in position space.
        for k in 0..m {
            let mut acc = zp[k];
            for &(j, uv) in &lu.ucols[k] {
                acc -= uv * zp[j];
            }
            zp[k] = acc / lu.udiag[k];
        }
        // Backward solve Lᵀ, then undo the permutation: y[rowp[j]] = v_j.
        let mut y = vec![0.0f64; m];
        for j in (0..m).rev() {
            let mut acc = zp[j];
            for &(i, lv) in &lu.lcols[j] {
                acc -= lv * zp[lu.rowp_inv[i]];
            }
            zp[j] = acc;
            y[lu.rowp[j]] = acc;
        }
        y
    }

    /// Row `r` of `B⁻¹`: solve `Bᵀ·y = e_r` (position space) — the
    /// pricing vector of the dual simplex.
    pub fn btran_unit(&self, r: usize) -> Vec<f64> {
        let mut e = vec![0.0f64; self.m];
        e[r] = 1.0;
        self.btran(&e)
    }

    /// Record the pivot (row `r`, FTRAN'd entering column `t`) as an eta
    /// transform. `t[r]` must already have passed the driver's pivot
    /// guard.
    pub fn update(&mut self, r: usize, t: &[f64]) {
        let col: Vec<(usize, f64)> = t
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.eta_nnz += col.len() + 1;
        self.etas.push(Eta {
            r,
            pivot: t[r],
            col,
        });
        self.peak_eta_len = self.peak_eta_len.max(self.etas.len() as u64);
    }

    /// Materialize `B⁻¹` row-major (`binv[r*m + i]`), as the dense
    /// backend stores it — used only to synthesize a [`crate::simplex::TableauView`]
    /// for Gomory cut generation at the B&B root.
    pub fn dense_binv(&self) -> Vec<f64> {
        let m = self.m;
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            // Column i of B^-1 is FTRAN(e_i); scatter into row-major.
            let mut e = vec![0.0f64; m];
            e[i] = 1.0;
            self.ftran_in_place(&mut e);
            for r in 0..m {
                binv[r * m + i] = e[r];
            }
        }
        binv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    fn dense_mat(m: usize, entries: &[&[f64]]) -> CscMatrix {
        // entries[j] is column j, dense.
        let mut csc = CscMatrix::with_capacity(m, entries.len(), m * entries.len());
        for col in entries {
            csc.push_col(
                col.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i, v)),
            );
        }
        csc
    }

    fn mat_vec(m: usize, cols: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (r, &j) in basis.iter().enumerate() {
            for (i, v) in cols.col(j) {
                out[i] += v * x[r];
            }
        }
        out
    }

    #[test]
    fn lu_solves_match_the_matrix() {
        // A 4x4 basis needing row pivoting (first column's largest entry
        // is not on the diagonal).
        let cols = dense_mat(
            4,
            &[
                &[0.0, 2.0, 1.0, 0.0],
                &[3.0, 0.0, 0.0, 1.0],
                &[1.0, 1.0, 4.0, 0.0],
                &[0.0, 0.5, 0.0, 2.0],
            ],
        );
        let basis = [0usize, 1, 2, 3];
        let mut eng = SparseBasis::new(4);
        eng.refactorize(&cols, &basis).expect("nonsingular");

        // FTRAN: B x = a.
        let a = [1.0, -2.0, 0.5, 3.0];
        let x = eng.ftran_dense(&a);
        let back = mat_vec(4, &cols, &basis, &x);
        for i in 0..4 {
            assert!((back[i] - a[i]).abs() < 1e-10, "ftran row {i}");
        }

        // BTRAN: B^T y = c (c in position space).
        let c = [0.3, 1.0, -1.5, 2.0];
        let y = eng.btran(&c);
        for (r, &j) in basis.iter().enumerate() {
            let dot: f64 = cols.col(j).map(|(i, v)| v * y[i]).sum();
            assert!((dot - c[r]).abs() < 1e-10, "btran position {r}");
        }
    }

    #[test]
    fn hyper_sparse_ftran_matches_dense_probe() {
        // Unit right-hand sides take the hyper-sparse path (1 nonzero on
        // an 8-row basis); dense RHS takes the probe path. Both must
        // produce bit-identical results.
        let m = 8;
        let cols_dense: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                (0..m)
                    .map(|i| {
                        if i == j {
                            2.0 + j as f64
                        } else if (i + 3 * j) % 5 == 0 {
                            1.0 + (i as f64) * 0.25
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = cols_dense.iter().map(|c| c.as_slice()).collect();
        let cols = dense_mat(m, &refs);
        let basis: Vec<usize> = (0..m).collect();
        let mut eng = SparseBasis::new(m);
        eng.refactorize(&cols, &basis).unwrap();
        for i in 0..m {
            let sparse = eng.ftran_sparse([(i, 1.0)]);
            let mut dense_rhs = vec![0.0; m];
            dense_rhs[i] = 1.0;
            let dense = eng.ftran_dense(&dense_rhs);
            assert_eq!(sparse, dense, "unit rhs {i}");
            let back = mat_vec(m, &cols, &basis, &sparse);
            for (r, &b) in back.iter().enumerate() {
                let want = if r == i { 1.0 } else { 0.0 };
                assert!((b - want).abs() < 1e-10, "rhs {i} row {r}");
            }
        }
    }

    #[test]
    fn eta_update_tracks_a_column_swap() {
        let cols = dense_mat(
            3,
            &[
                &[2.0, 0.0, 1.0],
                &[0.0, 1.0, 0.0],
                &[0.0, 0.0, 3.0],
                &[1.0, 1.0, 1.0], // candidate entering column
            ],
        );
        let mut basis = vec![0usize, 1, 2];
        let mut eng = SparseBasis::new(3);
        eng.refactorize(&cols, &basis).unwrap();

        // Pivot column 3 into row 1 via the eta update.
        let t = eng.ftran_sparse(cols.col(3));
        eng.update(1, &t);
        basis[1] = 3;
        assert_eq!(eng.eta_len(), 1);

        // The updated engine must solve with the *new* basis matrix.
        let a = [1.0, 2.0, 3.0];
        let x = eng.ftran_dense(&a);
        let back = mat_vec(3, &cols, &basis, &x);
        for i in 0..3 {
            assert!((back[i] - a[i]).abs() < 1e-10, "post-eta ftran row {i}");
        }
        let c = [1.0, -1.0, 0.5];
        let y = eng.btran(&c);
        for (r, &j) in basis.iter().enumerate() {
            let dot: f64 = cols.col(j).map(|(i, v)| v * y[i]).sum();
            assert!((dot - c[r]).abs() < 1e-10, "post-eta btran position {r}");
        }

        // A fresh factorization of the updated basis agrees and clears
        // the eta file.
        let mut fresh = SparseBasis::new(3);
        fresh.refactorize(&cols, &basis).unwrap();
        let x2 = fresh.ftran_dense(&a);
        for r in 0..3 {
            assert!((x2[r] - x[r]).abs() < 1e-10);
        }
        assert_eq!(fresh.eta_len(), 0);
    }

    #[test]
    fn signed_identity_factors_solve_without_a_refactorization() {
        let cols = dense_mat(3, &[&[1.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let basis = [0usize, 1, 2];
        let mut eng = SparseBasis::new(3);
        eng.factor_signed_identity(&[1.0, -1.0, 1.0]);
        assert_eq!(eng.refactorizations, 0);
        let a = [2.0, 3.0, -4.0];
        let x = eng.ftran_dense(&a);
        let back = mat_vec(3, &cols, &basis, &x);
        for i in 0..3 {
            assert!((back[i] - a[i]).abs() < 1e-12);
        }
        let y = eng.btran(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn refactor_trigger_follows_eta_growth_not_pivot_count() {
        let mut eng = SparseBasis::new(4);
        let cols = dense_mat(
            4,
            &[
                &[1.0, 0.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0, 0.0],
                &[0.0, 0.0, 1.0, 0.0],
                &[0.0, 0.0, 0.0, 1.0],
            ],
        );
        eng.refactorize(&cols, &[0, 1, 2, 3]).unwrap();
        assert!(!eng.should_refactor(64), "fresh factors need no rebuild");
        // Dense eta columns trip the fill-in arm long before the length
        // arm.
        for _ in 0..16 {
            eng.update(1, &[0.5, 2.0, 0.5, 0.5]);
        }
        assert!(eng.should_refactor(64), "fill-in outweighs the LU");
        // Clearing through a refactorization resets both arms.
        eng.refactorize(&cols, &[0, 1, 2, 3]).unwrap();
        assert!(!eng.should_refactor(64));
        // The length arm fires at refactor_every transforms.
        for _ in 0..3 {
            eng.update(0, &[1.0, 0.0, 0.0, 0.0]);
        }
        assert!(!eng.should_refactor(4));
        eng.update(0, &[1.0, 0.0, 0.0, 0.0]);
        assert!(eng.should_refactor(4));
    }

    #[test]
    fn singular_basis_is_rejected() {
        let cols = dense_mat(2, &[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut eng = SparseBasis::new(2);
        assert!(eng.refactorize(&cols, &[0, 1]).is_err());
    }

    #[test]
    fn dense_binv_matches_unit_solves() {
        let cols = dense_mat(3, &[&[4.0, 1.0, 0.0], &[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0]]);
        let basis = [0usize, 1, 2];
        let mut eng = SparseBasis::new(3);
        eng.refactorize(&cols, &basis).unwrap();
        let binv = eng.dense_binv();
        // B * B^-1 = I, checked column by column of B^-1.
        for i in 0..3 {
            let xi: Vec<f64> = (0..3).map(|r| binv[r * 3 + i]).collect();
            let back = mat_vec(3, &cols, &basis, &xi);
            for (r, &b) in back.iter().enumerate() {
                let want = if r == i { 1.0 } else { 0.0 };
                assert!((b - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn empty_basis_is_fine() {
        let cols = CscMatrix::with_capacity(0, 0, 0);
        let mut eng = SparseBasis::new(0);
        eng.refactorize(&cols, &[]).unwrap();
        assert!(eng.ftran_dense(&[]).is_empty());
        assert!(eng.btran(&[]).is_empty());
    }
}
