//! Sparse substrate for the revised simplex: CSC constraint-matrix
//! storage, the dense/sparse backend switch, warm-start basis snapshots,
//! and an incremental LP that re-optimizes after appended rows.
//!
//! The sparse backend (see [`crate::factor`] for the LU machinery and
//! [`crate::dual`] for the dual simplex) is the default; the historical
//! dense tableau survives behind `NP_LP_BACKEND=dense` as the reference
//! implementation the equivalence suite checks against.

use crate::model::{Model, Sense, VarId};
use crate::simplex::{Loc, LpSolution, SimplexConfig};

/// Which simplex basis engine a solve uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LpBackend {
    /// Resolve from the `NP_LP_BACKEND` environment variable
    /// (`dense` → dense; anything else, including unset → sparse).
    #[default]
    Auto,
    /// Dense basis inverse updated with row operations — the historical
    /// textbook implementation, kept alive as the equivalence reference.
    Dense,
    /// CSC + LU-factorized basis with eta updates and warm starts.
    Sparse,
}

impl LpBackend {
    /// Resolve `Auto` against the `NP_LP_BACKEND` environment variable.
    pub fn resolved(self) -> ResolvedBackend {
        match self {
            LpBackend::Dense => ResolvedBackend::Dense,
            LpBackend::Sparse => ResolvedBackend::Sparse,
            LpBackend::Auto => match std::env::var("NP_LP_BACKEND") {
                Ok(v) if v.eq_ignore_ascii_case("dense") => ResolvedBackend::Dense,
                _ => ResolvedBackend::Sparse,
            },
        }
    }

    /// Parse a CLI/env spelling (`dense`, `sparse`, `auto`).
    pub fn parse(s: &str) -> Option<LpBackend> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Some(LpBackend::Dense),
            "sparse" => Some(LpBackend::Sparse),
            "auto" => Some(LpBackend::Auto),
            _ => None,
        }
    }
}

/// A fully-resolved backend choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Dense basis inverse.
    Dense,
    /// Factorized sparse basis.
    Sparse,
}

/// Compressed-sparse-column matrix: the tableau's constraint matrix
/// (structural, logical and artificial columns) in three flat arrays.
/// Columns are appended once at build time and never mutated, so the
/// factorization and pricing loops iterate cache-friendly slices.
#[derive(Clone, Debug)]
pub struct CscMatrix {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// An empty matrix with `m` rows and reserved space.
    pub fn with_capacity(m: usize, ncols: usize, nnz: usize) -> CscMatrix {
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        col_ptr.push(0);
        CscMatrix {
            m,
            col_ptr,
            row_idx: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Append one column given `(row, value)` entries.
    pub fn push_col(&mut self, entries: impl IntoIterator<Item = (usize, f64)>) {
        for (i, v) in entries {
            debug_assert!(i < self.m);
            self.row_idx.push(i);
            self.vals.push(v);
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// The `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Largest absolute value among the entries of the given columns
    /// (1.0 floor), used to scale singularity thresholds.
    pub fn scale_of(&self, cols: &[usize]) -> f64 {
        let mut s = 1.0f64;
        for &j in cols {
            for (_, v) in self.col(j) {
                s = s.max(v.abs());
            }
        }
        s
    }
}

/// A column reference that survives row append/renumber: the identity of
/// a basis member independent of the tableau's flat column indexing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmCol {
    /// Structural variable `j` (stable across row changes).
    Struct(usize),
    /// The logical (slack) column of row `i`.
    Logical(usize),
    /// The artificial column of row `i` (pinned to zero after phase 1;
    /// may linger in a degenerate optimal basis).
    Artificial(usize),
}

/// An optimal-basis snapshot, sufficient to warm-start a re-optimization
/// after bound changes (branch & bound children) or appended rows
/// (Benders cut rounds). Captured by the sparse backend on every optimal
/// solve; installing it on a grown model puts each *new* row's logical
/// into the basis, which preserves dual feasibility (logicals price to
/// zero), so the dual simplex restores primal feasibility in a handful
/// of pivots instead of re-running both phases.
#[derive(Clone, Debug)]
pub struct WarmBasis {
    /// The basic column of each row at capture time.
    pub basis: Vec<WarmCol>,
    /// Rest state of every structural column.
    pub loc_struct: Vec<Loc>,
    /// Rest state of every logical column (indexed by row at capture).
    pub loc_logical: Vec<Loc>,
}

/// An LP that persists across Benders separation rounds: rows are
/// appended in place and each `solve` re-optimizes from the previous
/// optimal basis on the sparse backend. On the dense backend every solve
/// is cold, preserving the reference behavior exactly.
///
/// The append-only path is the fast path and its row-count monotonicity
/// is still asserted between removals. Rows added with a *tag*
/// ([`IncrementalLp::add_tagged_row`]) may additionally be removed as a
/// group ([`IncrementalLp::remove_tagged`]) — the churn pipeline's exact
/// cut invalidation — at the price of one forced refactorization: the
/// stored basis indexes rows by position, so any removal drops it and
/// the next solve is cold.
pub struct IncrementalLp {
    model: Model,
    config: SimplexConfig,
    warm: Option<WarmBasis>,
    rows_floor: usize,
    /// Tag of each row (`None` = untagged, never removable), aligned
    /// with the model's constraint indexing.
    row_tags: Vec<Option<u64>>,
    /// Cumulative [`crate::simplex::SolveStats`] over all solves.
    pub stats: crate::simplex::SolveStats,
    /// Solves that could not reuse a basis (first call, dense backend,
    /// or warm-start fallback).
    pub cold_solves: u64,
    /// Rows dropped through [`IncrementalLp::remove_tagged`]; each batch
    /// forces the next solve cold.
    pub tag_removals: u64,
}

impl IncrementalLp {
    /// Wrap `model` for incremental re-optimization.
    pub fn new(model: Model, config: SimplexConfig) -> IncrementalLp {
        let rows_floor = model.num_constrs();
        let row_tags = vec![None; rows_floor];
        IncrementalLp {
            model,
            config,
            warm: None,
            rows_floor,
            row_tags,
            stats: crate::simplex::SolveStats::default(),
            cold_solves: 0,
            tag_removals: 0,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Current row count.
    pub fn num_rows(&self) -> usize {
        self.model.num_constrs()
    }

    #[cfg(test)]
    pub(crate) fn model_mut_for_tests(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Append an untagged row in place — the persistent master model's
    /// fast path, warm-started across separation rounds. Untagged rows
    /// are permanent: nothing ever removes them.
    pub fn add_row(
        &mut self,
        name: impl Into<String>,
        coeffs: Vec<(VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) {
        self.model.add_constr(name, coeffs, sense, rhs);
        self.row_tags.push(None);
    }

    /// Append a row carrying a removal tag (e.g. the dense scenario index
    /// whose certificate induced a Benders cut). Otherwise identical to
    /// [`IncrementalLp::add_row`].
    pub fn add_tagged_row(
        &mut self,
        name: impl Into<String>,
        coeffs: Vec<(VarId, f64)>,
        sense: Sense,
        rhs: f64,
        tag: u64,
    ) {
        self.model.add_constr(name, coeffs, sense, rhs);
        self.row_tags.push(Some(tag));
    }

    /// Remove every tagged row whose tag satisfies `drop`, returning how
    /// many rows went away. A non-empty removal invalidates the stored
    /// basis (row positions shift), so the next [`IncrementalLp::solve`]
    /// performs a forced refactorization — a cold solve — and the
    /// monotonic row floor is lowered to the surviving count. Untagged
    /// rows are never touched, and a removal matching nothing keeps the
    /// warm fast path fully intact.
    pub fn remove_tagged(&mut self, drop: impl Fn(u64) -> bool) -> usize {
        let keep: Vec<bool> = self
            .row_tags
            .iter()
            .map(|t| !matches!(t, Some(tag) if drop(*tag)))
            .collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return 0;
        }
        // `purge_constrs` visits each original row once, in order, so a
        // running counter recovers the original index inside the closure.
        let mut i = 0;
        self.model.purge_constrs(0, |_| {
            let k = keep[i];
            i += 1;
            k
        });
        let mut j = 0;
        self.row_tags.retain(|_| {
            let k = keep[j];
            j += 1;
            k
        });
        self.warm = None;
        self.rows_floor = self.model.num_constrs();
        self.tag_removals += removed as u64;
        removed
    }

    /// Solve the current model, warm-starting from the previous optimal
    /// basis when the sparse backend is active.
    pub fn solve(&mut self) -> LpSolution {
        assert!(
            self.model.num_constrs() >= self.rows_floor,
            "incremental LP rows must grow monotonically ({} < {})",
            self.model.num_constrs(),
            self.rows_floor
        );
        self.rows_floor = self.model.num_constrs();
        let out = crate::simplex::solve_lp_warm(&self.model, &self.config, self.warm.as_ref());
        self.stats.refactorizations += out.solution.stats.refactorizations;
        self.stats.peak_eta_len += out.solution.stats.peak_eta_len;
        self.stats.warm_pivots += out.solution.stats.warm_pivots;
        self.stats.factor_us += out.solution.stats.factor_us;
        self.stats.ftran_btran_us += out.solution.stats.ftran_btran_us;
        self.stats.pricing_us += out.solution.stats.pricing_us;
        if !out.solution.stats.warm {
            self.cold_solves += 1;
        }
        self.warm = out.basis;
        out.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::simplex::LpStatus;

    #[test]
    fn csc_round_trips_columns() {
        let mut csc = CscMatrix::with_capacity(3, 2, 4);
        csc.push_col(vec![(0, 1.0), (2, -2.0)]);
        csc.push_col(vec![(1, 3.0)]);
        assert_eq!(csc.ncols(), 2);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -2.0)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(csc.scale_of(&[0, 1]), 3.0);
    }

    #[test]
    fn backend_resolution_prefers_explicit_choice() {
        assert_eq!(LpBackend::Dense.resolved(), ResolvedBackend::Dense);
        assert_eq!(LpBackend::Sparse.resolved(), ResolvedBackend::Sparse);
        assert_eq!(LpBackend::parse("DENSE"), Some(LpBackend::Dense));
        assert_eq!(LpBackend::parse("sparse"), Some(LpBackend::Sparse));
        assert_eq!(LpBackend::parse("auto"), Some(LpBackend::Auto));
        assert_eq!(LpBackend::parse("gurobi"), None);
    }

    #[test]
    fn incremental_rows_are_monotone_and_reoptimize() {
        // min x, x in [0, 10]; rounds push the lower bound up via rows.
        let mut m = Model::new("inc");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let cfg = SimplexConfig {
            backend: LpBackend::Sparse,
            ..SimplexConfig::default()
        };
        let mut inc = IncrementalLp::new(m, cfg);
        let s0 = inc.solve();
        assert_eq!(s0.status, LpStatus::Optimal);
        assert!((s0.objective - 0.0).abs() < 1e-9);
        for k in 1..=4 {
            let rows = inc.num_rows();
            inc.add_row(format!("ge{k}"), vec![(x, 1.0)], Sense::Ge, f64::from(k));
            assert_eq!(inc.num_rows(), rows + 1);
            let s = inc.solve();
            assert_eq!(s.status, LpStatus::Optimal);
            assert!(
                (s.objective - f64::from(k)).abs() < 1e-6,
                "round {k}: {}",
                s.objective
            );
        }
        // First solve is cold; the re-optimizations reuse the basis.
        assert_eq!(inc.cold_solves, 1, "appended rows must warm-start");
    }

    #[test]
    fn tagged_removal_forces_one_refactorization_then_warms_again() {
        // min x, x in [0, 10]; tagged rows push the bound, removal
        // relaxes it back.
        let mut m = Model::new("inc-tagged");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let cfg = SimplexConfig {
            backend: LpBackend::Sparse,
            ..SimplexConfig::default()
        };
        let mut inc = IncrementalLp::new(m, cfg);
        inc.add_row("base", vec![(x, 1.0)], Sense::Ge, 1.0);
        inc.add_tagged_row("t7", vec![(x, 1.0)], Sense::Ge, 7.0, 7);
        inc.add_tagged_row("t3", vec![(x, 1.0)], Sense::Ge, 3.0, 3);
        let s = inc.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6);
        assert_eq!(inc.cold_solves, 1);

        // A removal matching nothing keeps the warm path intact.
        assert_eq!(inc.remove_tagged(|t| t == 99), 0);
        inc.add_row("ge8", vec![(x, 1.0)], Sense::Ge, 8.0);
        let s = inc.solve();
        assert!((s.objective - 8.0).abs() < 1e-6);
        assert_eq!(inc.cold_solves, 1, "no-op removal must not go cold");
        assert_eq!(inc.tag_removals, 0);

        // Dropping tag 7 shifts later rows down and forces a cold solve;
        // the untagged rows survive (objective falls to the ge8 bound
        // even though that row's position moved).
        assert_eq!(inc.remove_tagged(|t| t == 7), 1);
        assert_eq!(inc.num_rows(), 3);
        let s = inc.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-6);
        assert_eq!(inc.cold_solves, 2, "removal forces a refactorization");
        assert_eq!(inc.tag_removals, 1);

        // The append fast path is intact after the removal.
        inc.add_row("ge9", vec![(x, 1.0)], Sense::Ge, 9.0);
        let s = inc.solve();
        assert!((s.objective - 9.0).abs() < 1e-6);
        assert_eq!(inc.cold_solves, 2, "appends warm-start again");
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn untagged_shrinkage_still_panics() {
        let mut m = Model::new("shrink");
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_constr("r", vec![(x, 1.0)], Sense::Ge, 0.5);
        let mut inc = IncrementalLp::new(m, SimplexConfig::default());
        inc.solve();
        // Mutating the model behind the wrapper's back (out-of-band row
        // removal) must still trip the monotonicity assert.
        let mut stolen = Model::new("empty");
        let y = stolen.add_var("x", 0.0, 1.0, 1.0, false);
        let _ = y;
        *inc.model_mut_for_tests() = stolen;
        inc.solve();
    }
}
