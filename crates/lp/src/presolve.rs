//! Presolve: cheap model reductions applied before the simplex.
//!
//! Implements the standard safe reductions that matter for our master
//! problems (and for LP hygiene generally):
//!
//! 1. **bound tightening from single rows** — a `≥` row with all-positive
//!    coefficients implies a lower bound on each variable once the others
//!    sit at their upper bounds (and dually for `≤` rows);
//! 2. **empty and redundant row removal** — rows that cannot be violated
//!    within the current bounds are dropped; rows that cannot be
//!    *satisfied* prove infeasibility immediately;
//! 3. **singleton rows** — a row with one variable is just a bound.
//!
//! The pass is iterated to a fixed point (bounded rounds), and returns a
//! report of what was done. It never changes the feasible set.

use crate::model::{Model, Sense};

/// What a presolve pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PresolveReport {
    /// Rows removed as redundant.
    pub redundant_rows: usize,
    /// Singleton rows converted into bounds.
    pub singleton_rows: usize,
    /// Variable bounds tightened.
    pub bounds_tightened: usize,
    /// The model was proven infeasible during presolve.
    pub proven_infeasible: bool,
    /// Fixed-point rounds executed.
    pub rounds: usize,
}

/// Smallest bound improvement worth recording (guards float churn).
const MIN_TIGHTEN: f64 = 1e-9;

/// Bound tightening only: no rows are added or removed, so constraint
/// indices stay stable — safe to run inside the MILP solver before the
/// search (cuts and duals keep their row alignment). Returns
/// `(bounds_tightened, proven_infeasible)`.
pub fn tighten_bounds(model: &mut Model) -> (usize, bool) {
    let mut total = 0usize;
    for _ in 0..4 {
        let mut m2 = model.clone();
        let report = presolve(&mut m2);
        if report.proven_infeasible {
            return (total, true);
        }
        // Copy only the bounds back.
        let mut changed = 0usize;
        for j in 0..model.num_vars() {
            let v = crate::model::VarId(j);
            let (ol, ou) = (model.var(v).lb, model.var(v).ub);
            let (nl, nu) = (m2.var(v).lb, m2.var(v).ub);
            if nl > ol + MIN_TIGHTEN || nu < ou - MIN_TIGHTEN {
                model.set_bounds(v, nl, nu);
                changed += 1;
            }
        }
        total += changed;
        if changed == 0 {
            break;
        }
    }
    (total, false)
}

/// Run presolve in place. Constraints may be removed and variable bounds
/// tightened; variable indices are preserved.
pub fn presolve(model: &mut Model) -> PresolveReport {
    let mut report = PresolveReport::default();
    for round in 0..8 {
        report.rounds = round + 1;
        let mut changed = false;

        // Row activity bounds: min/max of Σ a·x over the box.
        let activity = |model: &Model, row: usize| -> (f64, f64) {
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for &(v, a) in &model.constrs()[row].coeffs {
                let var = model.var(v);
                let (l, u) = (var.lb, var.ub);
                if a >= 0.0 {
                    lo += a * l;
                    hi += a * u;
                } else {
                    lo += a * u;
                    hi += a * l;
                }
            }
            (lo, hi)
        };

        // Pass 1: singleton rows → bounds; redundancy / infeasibility.
        let mut keep = vec![true; model.num_constrs()];
        // Indexed loop: `model` is mutated (`set_bounds`) mid-iteration,
        // which holding an iterator over `model.constrs()` would forbid.
        #[allow(clippy::needless_range_loop)]
        for row in 0..model.num_constrs() {
            let c = &model.constrs()[row];
            if c.coeffs.is_empty() {
                let violated = match c.sense {
                    Sense::Le => 0.0 > c.rhs + 1e-9,
                    Sense::Ge => 0.0 < c.rhs - 1e-9,
                    Sense::Eq => c.rhs.abs() > 1e-9,
                };
                if violated {
                    report.proven_infeasible = true;
                    return report;
                }
                keep[row] = false;
                report.redundant_rows += 1;
                changed = true;
                continue;
            }
            if c.coeffs.len() == 1 {
                let (v, a) = c.coeffs[0];
                let rhs = c.rhs / a;
                let var = model.var(v);
                let (mut lb, mut ub) = (var.lb, var.ub);
                match (c.sense, a > 0.0) {
                    (Sense::Le, true) | (Sense::Ge, false) => ub = ub.min(rhs),
                    (Sense::Ge, true) | (Sense::Le, false) => lb = lb.max(rhs),
                    (Sense::Eq, _) => {
                        lb = lb.max(rhs);
                        ub = ub.min(rhs);
                    }
                }
                if lb > ub + 1e-9 {
                    report.proven_infeasible = true;
                    return report;
                }
                let tightened = lb > var.lb + MIN_TIGHTEN || ub < var.ub - MIN_TIGHTEN;
                if tightened {
                    report.bounds_tightened += 1;
                    changed = true;
                }
                model.set_bounds(v, lb, ub.max(lb));
                keep[row] = false;
                report.singleton_rows += 1;
                continue;
            }
            let (lo, hi) = activity(model, row);
            let redundant = match c.sense {
                Sense::Le => hi <= c.rhs + 1e-9,
                Sense::Ge => lo >= c.rhs - 1e-9,
                Sense::Eq => false,
            };
            let impossible = match c.sense {
                Sense::Le => lo > c.rhs + 1e-9,
                Sense::Ge => hi < c.rhs - 1e-9,
                Sense::Eq => lo > c.rhs + 1e-9 || hi < c.rhs - 1e-9,
            };
            if impossible {
                report.proven_infeasible = true;
                return report;
            }
            if redundant {
                keep[row] = false;
                report.redundant_rows += 1;
                changed = true;
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut it = keep.into_iter();
            model.purge_constrs(0, |_| it.next().unwrap_or(true));
        }

        // Pass 2: bound tightening from multi-variable rows.
        for row in 0..model.num_constrs() {
            let c = model.constrs()[row].clone();
            let (lo, hi) = activity(model, row);
            for &(v, a) in &c.coeffs {
                let var = model.var(v);
                let (l, u) = (var.lb, var.ub);
                // Residual activity without this variable's contribution.
                let (term_lo, term_hi) = if a >= 0.0 {
                    (a * l, a * u)
                } else {
                    (a * u, a * l)
                };
                let rest_lo = lo - term_lo;
                let rest_hi = hi - term_hi;
                let mut new_l = l;
                let mut new_u = u;
                match c.sense {
                    Sense::Le => {
                        // a·x ≤ rhs − rest_lo
                        if rest_lo.is_finite() {
                            let cap = (c.rhs - rest_lo) / a;
                            if a > 0.0 {
                                new_u = new_u.min(cap);
                            } else {
                                new_l = new_l.max(cap);
                            }
                        }
                    }
                    Sense::Ge => {
                        // a·x ≥ rhs − rest_hi
                        if rest_hi.is_finite() {
                            let need = (c.rhs - rest_hi) / a;
                            if a > 0.0 {
                                new_l = new_l.max(need);
                            } else {
                                new_u = new_u.min(need);
                            }
                        }
                    }
                    Sense::Eq => { /* both directions handled by Le+Ge logic elsewhere */ }
                }
                // Integer variables can round their bounds inward.
                if var.integer {
                    if new_l.is_finite() {
                        new_l = (new_l - 1e-9).ceil();
                    }
                    if new_u.is_finite() {
                        new_u = (new_u + 1e-9).floor();
                    }
                }
                if new_l > new_u + 1e-9 {
                    report.proven_infeasible = true;
                    return report;
                }
                if new_l > l + MIN_TIGHTEN || new_u < u - MIN_TIGHTEN {
                    model.set_bounds(v, new_l, new_u.max(new_l));
                    report.bounds_tightened += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{solve_lp, LpStatus, SimplexConfig};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new("s");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        m.add_constr("c1", vec![(x, 2.0)], Sense::Ge, 6.0);
        m.add_constr("c2", vec![(x, 1.0)], Sense::Le, 8.0);
        let r = presolve(&mut m);
        assert_eq!(r.singleton_rows, 2);
        assert_eq!(m.num_constrs(), 0);
        assert_eq!(m.var(x).lb, 3.0);
        assert_eq!(m.var(x).ub, 8.0);
        assert!(!r.proven_infeasible);
    }

    #[test]
    fn detects_infeasible_singletons() {
        let mut m = Model::new("inf");
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0)], Sense::Ge, 5.0);
        assert!(presolve(&mut m).proven_infeasible);
    }

    #[test]
    fn redundant_rows_are_dropped() {
        let mut m = Model::new("red");
        let x = m.add_var("x", 0.0, 2.0, 1.0, false);
        let y = m.add_var("y", 0.0, 2.0, 1.0, false);
        // Always true within bounds: x + y ≤ 100.
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Le, 100.0);
        let r = presolve(&mut m);
        assert_eq!(r.redundant_rows, 1);
        assert_eq!(m.num_constrs(), 0);
    }

    #[test]
    fn impossible_rows_prove_infeasibility() {
        let mut m = Model::new("imp");
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        let y = m.add_var("y", 0.0, 1.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 5.0);
        assert!(presolve(&mut m).proven_infeasible);
    }

    #[test]
    fn ge_rows_tighten_lower_bounds() {
        // x + y ≥ 9 with y ≤ 4 forces x ≥ 5.
        let mut m = Model::new("tight");
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let y = m.add_var("y", 0.0, 4.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 9.0);
        let r = presolve(&mut m);
        assert!(r.bounds_tightened >= 1);
        assert!((m.var(x).lb - 5.0).abs() < 1e-9);
        assert_eq!(m.var(y).lb, 0.0, "y's bound cannot tighten (x can cover)");
    }

    #[test]
    fn integer_bounds_round_inward() {
        // 2x ≥ 5 with x integer: presolve should land x ≥ 3 directly.
        let mut m = Model::new("int");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        m.add_constr("c1", vec![(x, 2.0)], Sense::Ge, 5.0);
        // Keep a second row so the bound-tightening pass sees the var.
        let y = m.add_var("y", 0.0, 10.0, 1.0, false);
        m.add_constr("c2", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        presolve(&mut m);
        assert!(m.var(x).lb >= 2.5 - 1e-9);
        // The singleton pass applies the raw bound; the integer rounding
        // applies in the multi-row pass. Either way the LP below agrees
        // with the MILP optimum.
        let s = solve_lp(&m, &SimplexConfig::default());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.x[0] >= 2.5 - 1e-9);
    }

    #[test]
    fn tighten_bounds_keeps_rows_stable() {
        let mut m = Model::new("tb");
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let y = m.add_var("y", 0.0, 4.0, 1.0, false);
        m.add_constr("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 9.0);
        let rows = m.num_constrs();
        let (tightened, infeasible) = tighten_bounds(&mut m);
        assert!(!infeasible);
        assert!(tightened >= 1);
        assert_eq!(m.num_constrs(), rows, "rows must not move");
        assert!(m.var(x).lb >= 5.0 - 1e-9);
    }

    #[test]
    fn presolve_preserves_the_optimum() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let mut m = Model::new(format!("t{trial}"));
            let vars: Vec<_> = (0..6)
                .map(|j| {
                    let ub = rng.gen_range(2.0..8.0);
                    let obj = rng.gen_range(0.5..3.0);
                    m.add_var(format!("x{j}"), 0.0, ub, obj, false)
                })
                .collect();
            for k in 0..5 {
                let mut coeffs = Vec::new();
                for &v in &vars {
                    if rng.gen_bool(0.5) {
                        coeffs.push((v, rng.gen_range(0.3..2.0)));
                    }
                }
                if coeffs.is_empty() {
                    continue;
                }
                let worth: f64 = coeffs.iter().map(|&(v, a)| a * m.var(v).ub).sum();
                m.add_constr(format!("r{k}"), coeffs, Sense::Ge, worth * 0.4);
            }
            let before = solve_lp(&m, &SimplexConfig::default());
            let mut reduced = m.clone();
            let report = presolve(&mut reduced);
            assert!(!report.proven_infeasible);
            let after = solve_lp(&reduced, &SimplexConfig::default());
            assert_eq!(before.status, after.status);
            if before.status == LpStatus::Optimal {
                assert!(
                    (before.objective - after.objective).abs() <= 1e-6,
                    "trial {trial}: presolve changed the optimum {} -> {}",
                    before.objective,
                    after.objective
                );
            }
        }
    }
}
