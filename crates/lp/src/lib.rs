//! # np-lp
//!
//! Linear and mixed-integer programming substrate for the NeuroPlan
//! reproduction — the from-scratch stand-in for the Gurobi/CPLEX solver
//! the paper calls (§3.2, §4.3, §5).
//!
//! * [`model`] — a solver-agnostic model builder: variables with bounds,
//!   objective coefficients and integrality; linear constraints with
//!   `≤ / = / ≥` senses. The same model type is consumed by both solvers.
//! * [`simplex`] — a **bounded-variable two-phase simplex** with two
//!   interchangeable basis engines behind one driver: the default
//!   **sparse revised simplex** ([`sparse`] CSC storage, [`factor`]
//!   LU-factorized basis with eta updates and periodic refactorization)
//!   and the historical **dense** basis inverse (`NP_LP_BACKEND=dense`),
//!   kept as the bit-exactness reference. Dantzig pricing with a Bland
//!   fallback guards against cycling on both engines.
//! * [`dual`] — a bounded-variable **dual simplex** used for
//!   warm-started re-optimization: reinstall a previously-optimal basis
//!   after a bound change or appended rows and restore feasibility in a
//!   handful of pivots instead of re-running both phases.
//! * `presolve` — safe model reductions (singleton rows, redundant
//!   rows, bound tightening with integer rounding) applied before the
//!   heavy machinery;
//! * [`milp`] — **branch & bound** over the simplex relaxation:
//!   best-bound node selection, most-fractional branching, incumbent and
//!   gap management, node/time limits, and — crucially for NeuroPlan —
//!   **lazy-constraint callbacks**: every integer-feasible candidate is
//!   offered to a user callback that may reject it with violated cuts
//!   (our Benders metric-inequality separation), exactly the mechanism
//!   commercial solvers expose for row generation. Each child node
//!   warm-starts from its parent's optimal basis.
//!
//! Scale honesty: the sparse engine is a real revised simplex with LU
//! updates, but tuned for the repository's problem sizes (hundreds to a
//! few thousand rows/columns per LP) — the factorization is left-looking
//! with a dense work column rather than a supernodal code, and pricing is
//! full Dantzig rather than partial/steepest-edge. See DESIGN.md §12 for
//! the warm-start contract and §1 for why the Benders decomposition keeps
//! every LP we solve inside this envelope.

pub mod dual;
pub mod factor;
pub mod gomory;
pub mod milp;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod sparse;

pub use gomory::GmiCut;
pub use milp::{
    solve_mip, solve_mip_telemetry, Cut, MipConfig, MipSolution, MipStatus, SeparatorFn,
};
pub use model::{ConstrId, Model, Sense, VarId};
pub use presolve::{presolve, PresolveReport};
pub use simplex::{
    solve_lp, solve_lp_tableau, solve_lp_tableau_chaos, solve_lp_warm, solve_lp_warm_chaos,
    LpOutcome, LpSolution, LpStatus, SimplexConfig, SolveStats, TableauView,
};
pub use sparse::{CscMatrix, IncrementalLp, LpBackend, ResolvedBackend, WarmBasis, WarmCol};
