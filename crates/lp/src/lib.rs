//! # np-lp
//!
//! Linear and mixed-integer programming substrate for the NeuroPlan
//! reproduction — the from-scratch stand-in for the Gurobi/CPLEX solver
//! the paper calls (§3.2, §4.3, §5).
//!
//! * [`model`] — a solver-agnostic model builder: variables with bounds,
//!   objective coefficients and integrality; linear constraints with
//!   `≤ / = / ≥` senses. The same model type is consumed by both solvers.
//! * [`simplex`] — a dense **bounded-variable two-phase primal simplex**.
//!   Phase 1 drives artificial variables out of an all-artificial basis;
//!   phase 2 optimizes the true objective. The basis inverse is kept
//!   explicitly and refactorized periodically; Dantzig pricing with a
//!   Bland fallback guards against cycling.
//! * `presolve` — safe model reductions (singleton rows, redundant
//!   rows, bound tightening with integer rounding) applied before the
//!   heavy machinery;
//! * [`milp`] — **branch & bound** over the simplex relaxation:
//!   best-bound node selection, most-fractional branching, incumbent and
//!   gap management, node/time limits, and — crucially for NeuroPlan —
//!   **lazy-constraint callbacks**: every integer-feasible candidate is
//!   offered to a user callback that may reject it with violated cuts
//!   (our Benders metric-inequality separation), exactly the mechanism
//!   commercial solvers expose for row generation.
//!
//! Scale honesty: this is a dense textbook implementation engineered for
//! the repository's problem sizes (hundreds of rows/columns per LP). It
//! is *not* a sparse revised simplex with LU updates — see DESIGN.md §1
//! for why the Benders decomposition keeps every LP we solve inside this
//! envelope.

pub mod gomory;
pub mod milp;
pub mod model;
pub mod presolve;
pub mod simplex;

pub use gomory::GmiCut;
pub use milp::{
    solve_mip, solve_mip_telemetry, Cut, MipConfig, MipSolution, MipStatus, SeparatorFn,
};
pub use model::{ConstrId, Model, Sense, VarId};
pub use presolve::{presolve, PresolveReport};
pub use simplex::{
    solve_lp, solve_lp_tableau, solve_lp_tableau_chaos, LpSolution, LpStatus, SimplexConfig,
    TableauView,
};
