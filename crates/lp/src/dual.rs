//! Bounded-variable dual simplex: restore primal feasibility after a
//! warm-started basis reinstall.
//!
//! Precondition: the tableau holds a (near-)dual-feasible basis — reduced
//! costs respect the rest states — but basic values may violate their
//! bounds, which is exactly the state after a parent-optimal basis is
//! reinstalled under tightened bounds (a B&B branch) or appended rows
//! (Benders cuts). Each iteration picks the most-violated basic variable
//! as the leaving row, prices the row with one BTRAN, runs the dual ratio
//! test over the nonbasic columns to preserve dual feasibility, and
//! pivots. When no eligible entering column exists the LP is primal
//! infeasible (the caller re-certifies numerically before trusting it).

use crate::simplex::{Loc, LpStatus, Tableau};

/// Outcome of the feasibility-restoration loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DualStatus {
    /// All basic values are within bounds; primal phase 2 can finish.
    PrimalFeasible,
    /// A violated row admits no entering column: primal infeasible,
    /// subject to the caller's dual-feasibility certificate.
    Infeasible,
    /// Pivot budget exhausted — fall back to a cold solve.
    IterationLimit,
    /// A factorization failed — fall back to a cold solve.
    NumericalFailure,
}

impl From<LpStatus> for DualStatus {
    fn from(s: LpStatus) -> DualStatus {
        match s {
            LpStatus::NumericalFailure => DualStatus::NumericalFailure,
            _ => DualStatus::IterationLimit,
        }
    }
}

/// Run dual-simplex pivots until the basic values satisfy their bounds,
/// incrementing `iterations` per pivot (shared with the primal driver so
/// the total respects one budget).
pub(crate) fn restore_feasibility(
    t: &mut Tableau,
    max_iters: usize,
    iterations: &mut usize,
    refactor_every: usize,
) -> DualStatus {
    let zero_tol = 1e-9;
    loop {
        if *iterations >= max_iters {
            return DualStatus::IterationLimit;
        }
        // --- leaving row: largest bound violation --------------------------
        let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, above_ub)
        for r in 0..t.m {
            let bj = t.basis[r];
            let xv = t.x[bj];
            let (viol, above) = if xv > t.ub[bj] + t.tol {
                (xv - t.ub[bj], true)
            } else if xv < t.lb[bj] - t.tol {
                (t.lb[bj] - xv, false)
            } else {
                continue;
            };
            if leave.is_none_or(|(_, best, _)| viol > best) {
                leave = Some((r, viol, above));
            }
        }
        let Some((r, _, above)) = leave else {
            return DualStatus::PrimalFeasible;
        };

        // --- dual ratio test -----------------------------------------------
        // Row r of B⁻¹ prices every column: α_j = ρ·A_j. The leaving
        // basic must move back toward its violated bound, which fixes the
        // admissible sign of α_j per rest state; among the admissible
        // columns the one with the smallest |d_j/α_j| keeps every reduced
        // cost on its feasible side.
        let rho = t.btran_unit(r);
        let y = t.duals();
        let p0 = t.clock();
        let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
        for j in 0..t.ncols {
            if t.loc[j] == Loc::Basic || t.ub[j] - t.lb[j] <= t.tol {
                continue;
            }
            let mut alpha = 0.0;
            for (i, a) in t.cols.col(j) {
                alpha += rho[i] * a;
            }
            if alpha.abs() <= zero_tol {
                continue;
            }
            // x_Br must decrease when above its upper bound (so x_j moves
            // with sign(α) > 0 from a lower bound) and increase when
            // below its lower bound.
            let ok = match t.loc[j] {
                Loc::AtLb => {
                    if above {
                        alpha > zero_tol
                    } else {
                        alpha < -zero_tol
                    }
                }
                Loc::AtUb => {
                    if above {
                        alpha < -zero_tol
                    } else {
                        alpha > zero_tol
                    }
                }
                Loc::FreeZero => true,
                Loc::Basic => unreachable!(),
            };
            if !ok {
                continue;
            }
            let ratio = (t.reduced_cost(j, &y) / alpha).abs();
            let better = match enter {
                None => true,
                Some((_, best, besta)) => {
                    ratio < best - 1e-12
                        || ((ratio - best).abs() <= 1e-12 && alpha.abs() > besta.abs())
                }
            };
            if better {
                enter = Some((j, ratio, alpha));
            }
        }
        t.lap_price(p0);
        let Some((j, _, _)) = enter else {
            return DualStatus::Infeasible;
        };
        *iterations += 1;

        // --- pivot ----------------------------------------------------------
        let tcol = t.ftran(j);
        if tcol[r].abs() < 1e-11 {
            // BTRAN and FTRAN disagree badly: the factors have drifted.
            if t.refactorize().is_err() {
                return DualStatus::NumericalFailure;
            }
            continue;
        }
        let out = t.basis[r];
        let beta = if above { t.ub[out] } else { t.lb[out] };
        let delta = (t.x[out] - beta) / tcol[r];
        for (rr, &tc) in tcol.iter().enumerate().take(t.m) {
            let bj = t.basis[rr];
            t.x[bj] -= tc * delta;
        }
        t.x[j] += delta;
        t.loc[out] = if above { Loc::AtUb } else { Loc::AtLb };
        t.x[out] = beta;
        t.loc[j] = Loc::Basic;
        t.basis[r] = j;
        t.engine.update(r, &tcol);
        if t.due_refactor(*iterations, refactor_every) && t.refactorize().is_err() {
            return DualStatus::NumericalFailure;
        }
    }
}
