//! Backend equivalence: the sparse revised simplex must agree with the
//! dense reference on randomly generated bounded LPs — same status, same
//! objective, and compatible duals — including degenerate and infeasible
//! instances (DESIGN.md §12).
//!
//! Dual comparison caveat: degenerate optima admit multiple valid dual
//! vectors, so a componentwise mismatch is only a failure when one of
//! the two vectors fails the KKT certificate (dual feasibility +
//! complementary slackness) checked from outside the solver.

use np_lp::{
    solve_lp, solve_lp_warm_chaos, LpBackend, LpSolution, LpStatus, Model, Sense, SimplexConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn config(backend: LpBackend) -> SimplexConfig {
    SimplexConfig {
        backend,
        ..SimplexConfig::default()
    }
}

/// A random bounded LP with small integer data, which makes ties (and
/// therefore degeneracy) common rather than rare.
fn random_model(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=5usize);
    let m = rng.gen_range(0..=7usize);
    let mut model = Model::new(format!("rand_{seed}"));
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let lb = f64::from(rng.gen_range(-3..=1i32));
            let width = f64::from(rng.gen_range(0..=6i32));
            let obj = f64::from(rng.gen_range(-4..=4i32));
            model.add_var(format!("x{j}"), lb, lb + width, obj, false)
        })
        .collect();
    for i in 0..m {
        let coeffs: Vec<_> = vars
            .iter()
            .filter_map(|&v| {
                let a = rng.gen_range(-3..=3i32);
                (a != 0).then(|| (v, f64::from(a)))
            })
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        let sense = match rng.gen_range(0..6u32) {
            0 => Sense::Eq, // rarer: equalities make infeasibility likely
            1 | 2 => Sense::Ge,
            _ => Sense::Le,
        };
        let rhs = f64::from(rng.gen_range(-6..=6i32));
        model.add_constr(format!("c{i}"), coeffs, sense, rhs);
    }
    model
}

/// KKT certificate for `(lp.x, lp.duals)` checked from first principles:
/// primal feasibility, dual feasibility (reduced costs respect each
/// variable's rest position), and complementary slackness on the rows.
fn kkt_certified(model: &Model, lp: &LpSolution, tol: f64) -> bool {
    if model.max_violation(&lp.x) > tol {
        return false;
    }
    // Reduced costs d_j = c_j − yᵀA_j, accumulated column-wise.
    let mut d: Vec<f64> = model.vars().iter().map(|v| v.obj).collect();
    for (c, &yi) in model.constrs().iter().zip(&lp.duals) {
        for &(v, a) in &c.coeffs {
            d[v.0] -= yi * a;
        }
    }
    for (j, v) in model.vars().iter().enumerate() {
        let at_lb = lp.x[j] <= v.lb + tol;
        let at_ub = lp.x[j] >= v.ub - tol;
        let ok = match (at_lb, at_ub) {
            (true, true) => true, // fixed: any reduced cost
            (true, false) => d[j] >= -tol,
            (false, true) => d[j] <= tol,
            (false, false) => d[j].abs() <= tol,
        };
        if !ok {
            return false;
        }
    }
    for (c, &yi) in model.constrs().iter().zip(&lp.duals) {
        let slack = model.row_slack(c, &lp.x);
        // A slack row must carry a zero dual; a tight inequality's dual
        // sign follows from its slack column's reduced cost (∓y_i ≥ 0).
        let ok = match c.sense {
            Sense::Eq => true,
            _ if slack > tol => yi.abs() <= tol,
            Sense::Le => yi <= tol,
            Sense::Ge => yi >= -tol,
        };
        if !ok {
            return false;
        }
    }
    true
}

fn assert_backends_agree(model: &Model, seed: u64) {
    let dense = solve_lp(model, &config(LpBackend::Dense));
    let sparse = solve_lp(model, &config(LpBackend::Sparse));
    assert_eq!(
        dense.status, sparse.status,
        "status diverged on seed {seed}: dense {:?}, sparse {:?}",
        dense.status, sparse.status
    );
    if dense.status != LpStatus::Optimal {
        return;
    }
    let scale = dense.objective.abs().max(1.0);
    assert!(
        (dense.objective - sparse.objective).abs() <= 1e-6 * scale,
        "objective diverged on seed {seed}: dense {}, sparse {}",
        dense.objective,
        sparse.objective
    );
    let close = dense
        .duals
        .iter()
        .zip(&sparse.duals)
        .all(|(a, b)| (a - b).abs() <= 1e-5 * a.abs().max(1.0));
    if !close {
        // Degenerate optimum: multiple valid dual vectors. Both must
        // still be KKT certificates for their own primal point.
        assert!(
            kkt_certified(model, &dense, 1e-6) && kkt_certified(model, &sparse, 1e-6),
            "duals diverged without certificates on seed {seed}:\n dense {:?}\n sparse {:?}",
            dense.duals,
            sparse.duals
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn sparse_and_dense_agree_on_random_bounded_lps(seed in 0u64..1_000_000) {
        assert_backends_agree(&random_model(seed), seed);
    }
}

#[test]
fn backends_agree_on_a_degenerate_vertex() {
    // Many redundant rows meet at the same optimal vertex, so the basis
    // there is massively degenerate and the dual vector is not unique.
    let mut m = Model::new("degenerate");
    let x = m.add_var("x", 0.0, 10.0, -1.0, false);
    let y = m.add_var("y", 0.0, 10.0, -1.0, false);
    for k in 1..=5 {
        m.add_constr(format!("tie{k}"), vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
    }
    m.add_constr("cap_x", vec![(x, 1.0)], Sense::Le, 2.0);
    m.add_constr("cap_y", vec![(y, 1.0)], Sense::Le, 2.0);
    assert_backends_agree(&m, u64::MAX);
    let sparse = solve_lp(&m, &config(LpBackend::Sparse));
    assert_eq!(sparse.status, LpStatus::Optimal);
    assert!((sparse.objective - -4.0).abs() < 1e-9);
}

#[test]
fn backends_agree_that_contradictory_rows_are_infeasible() {
    let mut m = Model::new("contradiction");
    let x = m.add_var("x", 0.0, 5.0, 1.0, false);
    let y = m.add_var("y", 0.0, 5.0, 1.0, false);
    m.add_constr("lo", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 8.0);
    m.add_constr("hi", vec![(x, 1.0), (y, 1.0)], Sense::Le, 3.0);
    let dense = solve_lp(&m, &config(LpBackend::Dense));
    let sparse = solve_lp(&m, &config(LpBackend::Sparse));
    assert_eq!(dense.status, LpStatus::Infeasible);
    assert_eq!(sparse.status, LpStatus::Infeasible);
}

#[test]
fn warm_started_sparse_solve_recovers_from_injected_singularity() {
    use np_chaos::{Chaos, FaultClass, FaultPlan};
    // A warm-started re-optimization that chaos declares singular must
    // fall back to the cold ladder and still land on the cold optimum —
    // the `lp-singular` fault now exercises the factorized path too.
    let mut m = Model::new("warm_chaos");
    let x = m.add_var("x", 0.0, 10.0, 1.0, false);
    let y = m.add_var("y", 0.0, 10.0, 2.0, false);
    m.add_constr("need", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
    let cfg = config(LpBackend::Sparse);

    let clean = solve_lp_warm_chaos(&m, &cfg, None, false, &Chaos::disabled());
    assert_eq!(clean.solution.status, LpStatus::Optimal);
    let basis = clean.basis.expect("optimal sparse solves capture a basis");

    m.add_constr("cut", vec![(x, 1.0)], Sense::Ge, 4.0);
    let chaos = Chaos::new(FaultPlan::parse("lp-singular@0").unwrap());
    let out = solve_lp_warm_chaos(&m, &cfg, Some(&basis), false, &chaos);
    assert_eq!(chaos.fired(FaultClass::LpSingular), 1);
    assert_eq!(out.solution.status, LpStatus::Optimal);
    let reference = solve_lp(&m, &config(LpBackend::Dense));
    assert!(
        (out.solution.objective - reference.objective).abs() < 1e-9,
        "recovery drifted: {} vs {}",
        out.solution.objective,
        reference.objective
    );
}
