//! # np-churn
//!
//! Deterministic, seeded churn-event streams over a planning instance.
//!
//! Production networks are not one-shot problems: demands drift, links
//! get lit and decommissioned, the protected failure set grows, fiber
//! economics change. This crate turns that churn into a replayable
//! object: a [`ChurnEvent`] names one such change in raw indices against
//! the *current* network state, a [`ChurnSpec`] is either an explicit
//! event list or a seeded generator description, and
//! [`generate_stream`] expands the latter into a concrete stream that is
//! guaranteed to apply in sequence (each generated event is validated
//! against a scratch copy of the evolving instance, including a
//! structural-feasibility check, before it is emitted).
//!
//! The re-planning pipeline in `np-core` consumes these events one at a
//! time, converts each to an [`np_topology::Perturbation`] via
//! [`ChurnEvent::to_perturbation`], and uses the resulting
//! [`np_topology::PerturbDelta`] to invalidate exactly the Benders cuts
//! the event touches (DESIGN.md §14).

use np_topology::{Failure, FailureKind, FiberId, IpLink, LinkId, Network, Perturbation, SiteId};

/// Typed spec-parsing / resolution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnError {
    /// The spec contained no events.
    Empty,
    /// An event token's class name is not one of the five event classes.
    UnknownClass {
        /// The offending class name.
        name: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Which field (e.g. `"factor"`, `"link"`, `"seed"`).
        what: &'static str,
        /// The offending token.
        token: String,
    },
    /// A multiplicative factor was not finite and positive.
    BadFactor {
        /// The offending value.
        value: f64,
    },
    /// A token was missing a required field.
    MissingField {
        /// Which field (e.g. `"seed"`, `"fiber|site"`).
        what: &'static str,
        /// The offending token (or whole spec for `seed`).
        token: String,
    },
    /// An index referred outside the current network.
    OutOfRange {
        /// What kind of entity (`"link"`, `"fiber"`, `"site"`).
        what: &'static str,
        /// The index asked for.
        index: usize,
        /// How many such entities the network has.
        len: usize,
    },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Empty => write!(f, "churn spec contains no events"),
            ChurnError::UnknownClass { name } => write!(
                f,
                "unknown event class `{name}` (one of: demand-scale link-add link-remove \
                 failure-add fiber-cost)"
            ),
            ChurnError::BadNumber { what, token } => {
                write!(f, "cannot parse {what} in `{token}`")
            }
            ChurnError::BadFactor { value } => {
                write!(f, "factor must be finite and positive, got {value}")
            }
            ChurnError::MissingField { what, token } => {
                write!(f, "missing {what} in `{token}`")
            }
            ChurnError::OutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (network has {len})")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// What fails in a [`ChurnEvent::FailureAdd`], in raw indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureSpec {
    /// A cut of the given fiber (by index).
    FiberCut(usize),
    /// The given site (by index) goes down.
    SiteDown(usize),
}

/// One churn event, expressed against the network state at the moment it
/// is applied (raw indices, not ids — ids shift under link removal).
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// Scale every flow's demand by a uniform factor.
    DemandScale {
        /// Multiplier on every `demand_gbps` (finite, > 0).
        factor: f64,
    },
    /// Light a new IP link parallel to an existing one: same endpoints and
    /// fiber path, zero baseline capacity (the planner decides how much to
    /// put on it). This is the common growth event — a new lambda on an
    /// already-built route.
    LinkAdd {
        /// Index of the link whose route the new link duplicates.
        twin_of: usize,
    },
    /// Decommission the link at this index.
    LinkRemove {
        /// Index of the link to remove.
        link: usize,
    },
    /// Start protecting against one more failure scenario.
    FailureAdd {
        /// What fails.
        spec: FailureSpec,
    },
    /// Rescale one fiber's build cost (changes per-unit link economics,
    /// nothing about feasibility).
    FiberCost {
        /// Index of the fiber.
        fiber: usize,
        /// Multiplier on `build_cost` (finite, > 0).
        factor: f64,
    },
}

impl ChurnEvent {
    /// One-word class name, matching [`np_topology::PerturbDelta::class`].
    pub fn class(&self) -> &'static str {
        match self {
            ChurnEvent::DemandScale { .. } => "demand-scale",
            ChurnEvent::LinkAdd { .. } => "link-add",
            ChurnEvent::LinkRemove { .. } => "link-remove",
            ChurnEvent::FailureAdd { .. } => "failure-add",
            ChurnEvent::FiberCost { .. } => "fiber-cost",
        }
    }

    /// Resolve this event against the current network into a concrete
    /// [`Perturbation`], validating indices and factors.
    pub fn to_perturbation(&self, net: &Network) -> Result<Perturbation, ChurnError> {
        match *self {
            ChurnEvent::DemandScale { factor } => {
                check_factor(factor)?;
                Ok(Perturbation::DemandScale { factor })
            }
            ChurnEvent::LinkAdd { twin_of } => {
                let n = net.links().len();
                if twin_of >= n {
                    return Err(ChurnError::OutOfRange {
                        what: "link",
                        index: twin_of,
                        len: n,
                    });
                }
                let twin = net.link(LinkId::new(twin_of));
                Ok(Perturbation::LinkAdd {
                    link: IpLink {
                        capacity_units: 0,
                        min_units: 0,
                        ..twin.clone()
                    },
                })
            }
            ChurnEvent::LinkRemove { link } => {
                let n = net.links().len();
                if link >= n {
                    return Err(ChurnError::OutOfRange {
                        what: "link",
                        index: link,
                        len: n,
                    });
                }
                Ok(Perturbation::LinkRemove {
                    link: LinkId::new(link),
                })
            }
            ChurnEvent::FailureAdd { spec } => {
                let failure = match spec {
                    FailureSpec::FiberCut(f) => {
                        let n = net.fibers().len();
                        if f >= n {
                            return Err(ChurnError::OutOfRange {
                                what: "fiber",
                                index: f,
                                len: n,
                            });
                        }
                        Failure {
                            name: format!("churn:cut:f{f}"),
                            kind: FailureKind::FiberCut(FiberId::new(f)),
                        }
                    }
                    FailureSpec::SiteDown(s) => {
                        let n = net.sites().len();
                        if s >= n {
                            return Err(ChurnError::OutOfRange {
                                what: "site",
                                index: s,
                                len: n,
                            });
                        }
                        Failure {
                            name: format!("churn:down:s{s}"),
                            kind: FailureKind::SiteDown(SiteId::new(s)),
                        }
                    }
                };
                Ok(Perturbation::FailureAdd { failure })
            }
            ChurnEvent::FiberCost { fiber, factor } => {
                check_factor(factor)?;
                let n = net.fibers().len();
                if fiber >= n {
                    return Err(ChurnError::OutOfRange {
                        what: "fiber",
                        index: fiber,
                        len: n,
                    });
                }
                Ok(Perturbation::FiberCostChange {
                    fiber: FiberId::new(fiber),
                    factor,
                })
            }
        }
    }

    /// Parse one event token (the inverse of [`ChurnEvent`]'s `Display`).
    pub fn parse(token: &str) -> Result<ChurnEvent, ChurnError> {
        let token = token.trim();
        let mut parts = token.split(':');
        let class = parts.next().unwrap_or("").trim();
        let missing = |what| ChurnError::MissingField {
            what,
            token: token.to_string(),
        };
        let num = |what: &'static str, s: Option<&str>| -> Result<usize, ChurnError> {
            let s = s.ok_or(missing(what))?.trim();
            s.parse().map_err(|_| ChurnError::BadNumber {
                what,
                token: token.to_string(),
            })
        };
        let fac = |what: &'static str, s: Option<&str>| -> Result<f64, ChurnError> {
            let s = s.ok_or(missing(what))?.trim();
            s.parse().map_err(|_| ChurnError::BadNumber {
                what,
                token: token.to_string(),
            })
        };
        let ev = match class {
            "demand-scale" => ChurnEvent::DemandScale {
                factor: fac("factor", parts.next())?,
            },
            "link-add" => ChurnEvent::LinkAdd {
                twin_of: num("link", parts.next())?,
            },
            "link-remove" => ChurnEvent::LinkRemove {
                link: num("link", parts.next())?,
            },
            "failure-add" => {
                let kind = parts.next().ok_or(missing("fiber|site"))?.trim();
                let idx = num("index", parts.next())?;
                let spec = match kind {
                    "fiber" => FailureSpec::FiberCut(idx),
                    "site" => FailureSpec::SiteDown(idx),
                    _ => {
                        return Err(ChurnError::UnknownClass {
                            name: format!("failure-add:{kind}"),
                        })
                    }
                };
                ChurnEvent::FailureAdd { spec }
            }
            "fiber-cost" => ChurnEvent::FiberCost {
                fiber: num("fiber", parts.next())?,
                factor: fac("factor", parts.next())?,
            },
            other => {
                return Err(ChurnError::UnknownClass {
                    name: other.to_string(),
                })
            }
        };
        Ok(ev)
    }
}

impl std::fmt::Display for ChurnEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnEvent::DemandScale { factor } => write!(f, "demand-scale:{factor}"),
            ChurnEvent::LinkAdd { twin_of } => write!(f, "link-add:{twin_of}"),
            ChurnEvent::LinkRemove { link } => write!(f, "link-remove:{link}"),
            ChurnEvent::FailureAdd {
                spec: FailureSpec::FiberCut(i),
            } => write!(f, "failure-add:fiber:{i}"),
            ChurnEvent::FailureAdd {
                spec: FailureSpec::SiteDown(i),
            } => write!(f, "failure-add:site:{i}"),
            ChurnEvent::FiberCost { fiber, factor } => write!(f, "fiber-cost:{fiber}:{factor}"),
        }
    }
}

fn check_factor(factor: f64) -> Result<(), ChurnError> {
    if factor.is_finite() && factor > 0.0 {
        Ok(())
    } else {
        Err(ChurnError::BadFactor { value: factor })
    }
}

/// A churn workload: either an explicit event list or a seeded generator
/// description, parsed from the CLI's `--events` value or a file.
///
/// Grammar:
///
/// * **Generated**: `seed=<u64>[,n=<count>]` — expanded lazily against a
///   concrete network by [`ChurnSpec::resolve`] / [`generate_stream`].
/// * **Explicit**: event tokens separated by `;` or newlines, blank
///   tokens and `#`-comment lines ignored:
///   `demand-scale:<factor>`, `link-add:<link>`, `link-remove:<link>`,
///   `failure-add:fiber:<i>`, `failure-add:site:<i>`,
///   `fiber-cost:<fiber>:<factor>`.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnSpec {
    /// Seeded generator description.
    Generated {
        /// Stream seed.
        seed: u64,
        /// Number of events to generate.
        n: usize,
    },
    /// Explicit event list.
    Explicit(Vec<ChurnEvent>),
}

impl ChurnSpec {
    /// Parse a spec string (see the type-level grammar).
    pub fn parse(spec: &str) -> Result<ChurnSpec, ChurnError> {
        let trimmed = spec.trim();
        if trimmed.starts_with("seed=") {
            let mut seed: Option<u64> = None;
            let mut n: usize = 10;
            for tok in trimmed.split(',') {
                let tok = tok.trim();
                if tok.is_empty() {
                    continue;
                }
                let (k, v) = tok.split_once('=').ok_or(ChurnError::MissingField {
                    what: "key=value",
                    token: tok.to_string(),
                })?;
                match k.trim() {
                    "seed" => {
                        seed = Some(v.trim().parse().map_err(|_| ChurnError::BadNumber {
                            what: "seed",
                            token: tok.to_string(),
                        })?)
                    }
                    "n" => {
                        n = v.trim().parse().map_err(|_| ChurnError::BadNumber {
                            what: "n",
                            token: tok.to_string(),
                        })?
                    }
                    other => {
                        return Err(ChurnError::UnknownClass {
                            name: other.to_string(),
                        })
                    }
                }
            }
            let seed = seed.ok_or(ChurnError::MissingField {
                what: "seed",
                token: trimmed.to_string(),
            })?;
            if n == 0 {
                return Err(ChurnError::Empty);
            }
            return Ok(ChurnSpec::Generated { seed, n });
        }
        let mut events = Vec::new();
        for tok in trimmed.split([';', '\n']) {
            let tok = tok.trim();
            if tok.is_empty() || tok.starts_with('#') {
                continue;
            }
            events.push(ChurnEvent::parse(tok)?);
        }
        if events.is_empty() {
            return Err(ChurnError::Empty);
        }
        Ok(ChurnSpec::Explicit(events))
    }

    /// Number of events this spec describes.
    pub fn len(&self) -> usize {
        match self {
            ChurnSpec::Generated { n, .. } => *n,
            ChurnSpec::Explicit(events) => events.len(),
        }
    }

    /// Whether the spec describes no events (unreachable via `parse`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand into a concrete event stream for `net` (the network state
    /// *before* the first event). Generated specs run the seeded
    /// generator; explicit specs are returned as-is (they are validated
    /// only as they are applied, so a stream may legitimately reference
    /// links that earlier events create).
    pub fn resolve(&self, net: &Network) -> Vec<ChurnEvent> {
        match self {
            ChurnSpec::Generated { seed, n } => generate_stream(net, *seed, *n),
            ChurnSpec::Explicit(events) => events.clone(),
        }
    }
}

/// `splitmix64` — the stream generator's PRNG step. Public because the
/// re-planning pipeline reuses it for its own seeded picks (the
/// link-flap victim), keeping every churn-related random draw on one
/// well-known generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether every active flow of every scenario still has *some* path of
/// alive links between its endpoints — the cheapest necessary condition
/// for a plan to exist at any capacity. The generator refuses events
/// that break it, so generated streams never drive the planner into a
/// structurally infeasible instance.
pub fn structurally_ok(net: &Network) -> bool {
    let scenarios = std::iter::once(None).chain(net.failure_ids().map(Some));
    for scenario in scenarios {
        let mut reach_cache: Vec<Option<Vec<bool>>> = vec![None; net.sites().len()];
        for flow_id in net.flow_ids() {
            if !net.flow_active(flow_id, scenario) {
                continue;
            }
            let flow = net.flow(flow_id);
            let src = flow.src.index();
            if reach_cache[src].is_none() {
                reach_cache[src] = Some(reachable_from(net, src, scenario));
            }
            let reach = reach_cache[src].as_ref().expect("just filled");
            if !reach[flow.dst.index()] {
                return false;
            }
        }
    }
    true
}

/// BFS over alive links from `src` under `scenario`.
fn reachable_from(
    net: &Network,
    src: usize,
    scenario: Option<np_topology::FailureId>,
) -> Vec<bool> {
    let n = net.sites().len();
    let mut seen = vec![false; n];
    seen[src] = true;
    let mut queue = vec![src];
    while let Some(u) = queue.pop() {
        for l in net.link_ids() {
            if !net.link_alive(l, scenario) {
                continue;
            }
            let link = net.link(l);
            let (a, b) = (link.src.index(), link.dst.index());
            let v = if a == u {
                b
            } else if b == u {
                a
            } else {
                continue;
            };
            if !seen[v] {
                seen[v] = true;
                queue.push(v);
            }
        }
    }
    seen
}

/// Expand a seeded generator description into a concrete event stream.
///
/// Deterministic: the stream is a pure function of `(net, seed, n)`.
/// Each event is drawn with [`splitmix64`], validated against a scratch
/// copy of the evolving instance (application must succeed *and*
/// [`structurally_ok`] must hold afterwards), and only then emitted; a
/// draw that does not apply is retried with the next PRNG output, and
/// after 32 failed draws the event degrades to a small demand bump,
/// which always applies.
pub fn generate_stream(net: &Network, seed: u64, n: usize) -> Vec<ChurnEvent> {
    let mut scratch = net.clone();
    let mut state = seed;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let mut picked = None;
        for _ in 0..32 {
            let r = splitmix64(&mut state);
            let r2 = splitmix64(&mut state);
            let Some(ev) = candidate_event(&scratch, r, r2) else {
                continue;
            };
            if applies(&mut scratch, &ev) {
                picked = Some(ev);
                break;
            }
        }
        let ev = picked.unwrap_or_else(|| {
            let ev = ChurnEvent::DemandScale { factor: 1.05 };
            let applied = applies(&mut scratch, &ev);
            debug_assert!(applied, "a demand bump always applies");
            ev
        });
        events.push(ev);
    }
    events
}

/// Draw one candidate event from two PRNG outputs against the current
/// scratch state. `None` when the drawn class has nothing to act on.
fn candidate_event(net: &Network, r: u64, r2: u64) -> Option<ChurnEvent> {
    let links = net.links().len();
    let fibers = net.fibers().len();
    match r % 5 {
        // Uniform drift in [0.85, 1.25].
        0 => Some(ChurnEvent::DemandScale {
            factor: 0.85 + (r2 % 1001) as f64 / 1000.0 * 0.4,
        }),
        1 if links > 0 => Some(ChurnEvent::LinkAdd {
            twin_of: (r2 % links as u64) as usize,
        }),
        2 if links > 1 => Some(ChurnEvent::LinkRemove {
            link: (r2 % links as u64) as usize,
        }),
        3 if fibers > 0 => {
            let fiber = (r2 % fibers as u64) as usize;
            // Skip fibers already in the failure set — a duplicate
            // scenario adds no new protection.
            let dup = net
                .failures()
                .iter()
                .any(|f| f.kind == FailureKind::FiberCut(FiberId::new(fiber)));
            if dup {
                None
            } else {
                Some(ChurnEvent::FailureAdd {
                    spec: FailureSpec::FiberCut(fiber),
                })
            }
        }
        // Cost rescale in [0.7, 1.3].
        4 if fibers > 0 => Some(ChurnEvent::FiberCost {
            fiber: (r2 % fibers as u64) as usize,
            factor: 0.7 + ((r2 >> 32) % 601) as f64 / 1000.0,
        }),
        _ => None,
    }
}

/// Apply `ev` to `scratch` if it is valid there and keeps the instance
/// structurally feasible; report whether it was committed.
fn applies(scratch: &mut Network, ev: &ChurnEvent) -> bool {
    let Ok(p) = ev.to_perturbation(scratch) else {
        return false;
    };
    let mut cand = scratch.clone();
    if cand.apply_perturbation(&p).is_err() {
        return false;
    }
    if !structurally_ok(&cand) {
        return false;
    }
    *scratch = cand;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::generator::GeneratorConfig;

    fn net() -> Network {
        GeneratorConfig::a_variant(0.5).generate()
    }

    #[test]
    fn event_tokens_round_trip_through_display() {
        let evs = [
            ChurnEvent::DemandScale { factor: 1.25 },
            ChurnEvent::LinkAdd { twin_of: 3 },
            ChurnEvent::LinkRemove { link: 0 },
            ChurnEvent::FailureAdd {
                spec: FailureSpec::FiberCut(2),
            },
            ChurnEvent::FailureAdd {
                spec: FailureSpec::SiteDown(1),
            },
            ChurnEvent::FiberCost {
                fiber: 4,
                factor: 0.8,
            },
        ];
        for ev in &evs {
            assert_eq!(ChurnEvent::parse(&ev.to_string()).as_ref(), Ok(ev));
        }
        // A whole explicit spec round-trips too (joined with ';').
        let spec = evs
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(";");
        assert_eq!(
            ChurnSpec::parse(&spec),
            Ok(ChurnSpec::Explicit(evs.to_vec()))
        );
    }

    #[test]
    fn parser_reports_typed_errors() {
        assert_eq!(
            ChurnEvent::parse("warp-drive:1"),
            Err(ChurnError::UnknownClass {
                name: "warp-drive".to_string()
            })
        );
        assert!(matches!(
            ChurnEvent::parse("demand-scale:abc"),
            Err(ChurnError::BadNumber { what: "factor", .. })
        ));
        assert!(matches!(
            ChurnEvent::parse("link-remove"),
            Err(ChurnError::MissingField { what: "link", .. })
        ));
        assert!(matches!(
            ChurnEvent::parse("failure-add:conduit:3"),
            Err(ChurnError::UnknownClass { .. })
        ));
        assert_eq!(ChurnSpec::parse(""), Err(ChurnError::Empty));
        assert_eq!(ChurnSpec::parse("# only a comment"), Err(ChurnError::Empty));
        assert!(matches!(
            ChurnSpec::parse("seed=x"),
            Err(ChurnError::BadNumber { what: "seed", .. })
        ));
        assert!(matches!(
            ChurnSpec::parse("seed=1,n=0"),
            Err(ChurnError::Empty)
        ));
    }

    #[test]
    fn generated_spec_parses_with_defaults() {
        assert_eq!(
            ChurnSpec::parse("seed=7"),
            Ok(ChurnSpec::Generated { seed: 7, n: 10 })
        );
        assert_eq!(
            ChurnSpec::parse(" seed=7 , n=3 "),
            Ok(ChurnSpec::Generated { seed: 7, n: 3 })
        );
    }

    #[test]
    fn explicit_spec_tolerates_comments_and_newlines() {
        let spec = "# warm-up\ndemand-scale:1.1\n\nlink-add:0 ; fiber-cost:0:1.2";
        let ChurnSpec::Explicit(evs) = ChurnSpec::parse(spec).unwrap() else {
            panic!("explicit expected")
        };
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[1], ChurnEvent::LinkAdd { twin_of: 0 });
    }

    #[test]
    fn to_perturbation_validates_indices_and_factors() {
        let net = net();
        let links = net.links().len();
        assert_eq!(
            ChurnEvent::LinkRemove { link: links }.to_perturbation(&net),
            Err(ChurnError::OutOfRange {
                what: "link",
                index: links,
                len: links
            })
        );
        assert_eq!(
            ChurnEvent::DemandScale { factor: -1.0 }.to_perturbation(&net),
            Err(ChurnError::BadFactor { value: -1.0 })
        );
        // The link-add twin is a zero-baseline copy of the route.
        let p = ChurnEvent::LinkAdd { twin_of: 0 }
            .to_perturbation(&net)
            .unwrap();
        let Perturbation::LinkAdd { link } = p else {
            panic!("wrong perturbation")
        };
        let twin = net.link(LinkId::new(0));
        assert_eq!(link.capacity_units, 0);
        assert_eq!(link.min_units, 0);
        assert_eq!(link.fiber_path, twin.fiber_path);
        assert_eq!((link.src, link.dst), (twin.src, twin.dst));
    }

    #[test]
    fn generated_streams_are_deterministic_and_applicable() {
        let net = net();
        let a = generate_stream(&net, 42, 12);
        let b = generate_stream(&net, 42, 12);
        assert_eq!(a, b, "same seed, same stream");
        let c = generate_stream(&net, 43, 12);
        assert_ne!(a, c, "different seed, different stream");
        assert_eq!(a.len(), 12);
        // Replaying the stream on a fresh copy applies cleanly and keeps
        // the instance structurally feasible after every event.
        let mut replay = net.clone();
        for ev in &a {
            let p = ev.to_perturbation(&replay).expect("event resolves");
            replay.apply_perturbation(&p).expect("event applies");
            assert!(structurally_ok(&replay), "stream preserves feasibility");
        }
    }

    #[test]
    fn generated_streams_mix_event_classes() {
        let net = net();
        let evs = generate_stream(&net, 7, 40);
        let mut classes: Vec<&str> = evs.iter().map(|e| e.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        assert!(
            classes.len() >= 3,
            "40 events should cover at least 3 classes, got {classes:?}"
        );
    }

    #[test]
    fn structural_check_rejects_disconnection() {
        let mut net = net();
        assert!(structurally_ok(&net));
        // Removing every link between some site pair eventually breaks
        // connectivity for an active flow; the generator must never do
        // that, but the checker has to notice when we do it by hand.
        // Remove links until the check fails or only one link is left.
        let mut broke = false;
        while net.links().len() > 1 {
            let p = Perturbation::LinkRemove {
                link: LinkId::new(0),
            };
            if net.apply_perturbation(&p).is_err() {
                break;
            }
            if !structurally_ok(&net) {
                broke = true;
                break;
            }
        }
        assert!(broke, "stripping links must eventually disconnect a flow");
    }
}
