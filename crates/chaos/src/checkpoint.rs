//! The checkpoint substrate: versioned, checksummed JSONL records.
//!
//! A checkpoint file is a sequence of lines, each
//!
//! ```text
//! {"sum":"<fnv1a64 hex>","rec":{"v":1,"kind":"<kind>","body":{...}}}
//! ```
//!
//! where `sum` is the FNV-1a 64 checksum of the compact serialization of
//! `rec`. The vendored `serde_json` writer is canonical (re-serializing
//! a parsed value reproduces the text byte for byte), so the reader can
//! verify checksums without storing the raw text. [`read_records`] stops
//! at the first line that fails to parse, verify, or version-match —
//! a torn tail (killed process, injected truncation) silently drops the
//! incomplete record and resume falls back to the previous one.
//!
//! Because JSON numbers are `f64`, bit-exact `f64` payloads (parameters,
//! costs, RNG-adjacent state) travel as little-endian hex strings via
//! [`f64_to_hex`]/[`f64s_to_hex`] — the round trip is exact for every
//! value including negative zero and the full subnormal range.

use crate::{Chaos, FaultClass};
use serde_json::Value;
use std::io::Write;
use std::path::Path;

/// Version stamped into (and required of) every record.
pub const FORMAT_VERSION: u64 = 1;

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One `f64` as 16 lowercase hex digits (little-endian bytes).
pub fn f64_to_hex(x: f64) -> String {
    let mut s = String::with_capacity(16);
    for b in x.to_le_bytes() {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`f64_to_hex`].
pub fn hex_to_f64(s: &str) -> Option<f64> {
    let bytes = hex_bytes(s)?;
    Some(f64::from_le_bytes(bytes.try_into().ok()?))
}

/// A whole slice as one hex blob (16 digits per value).
pub fn f64s_to_hex(xs: &[f64]) -> String {
    let mut s = String::with_capacity(16 * xs.len());
    for &x in xs {
        for b in x.to_le_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
    }
    s
}

/// Inverse of [`f64s_to_hex`].
pub fn hex_to_f64s(s: &str) -> Option<Vec<f64>> {
    let bytes = hex_bytes(s)?;
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

fn hex_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|c| u8::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
        .collect()
}

/// One verified checkpoint record.
#[derive(Clone, Debug)]
pub struct Record {
    /// The record kind (e.g. `"epoch"`, `"first_stage"`, `"master"`).
    pub kind: String,
    /// The kind-specific payload.
    pub body: Value,
}

/// Append one record to `path` (created if missing) and flush it to the
/// OS. When the chaos plan's `truncate-checkpoint` trigger fires, only
/// the first half of the line is written (no newline) — a simulated torn
/// write that the reader must survive.
pub fn append_record(path: &Path, kind: &str, body: Value, chaos: &Chaos) -> std::io::Result<()> {
    let rec = Value::Object(vec![
        ("v".to_string(), Value::Num(FORMAT_VERSION as f64)),
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("body".to_string(), body),
    ]);
    let payload = serde_json::to_string(&rec).expect("value serialization is infallible");
    let line = format!(
        "{{\"sum\":\"{:016x}\",\"rec\":{payload}}}\n",
        fnv1a64(payload.as_bytes())
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if chaos.should_fire(FaultClass::TruncateCheckpoint) {
        file.write_all(&line.as_bytes()[..line.len() / 2])?;
    } else {
        file.write_all(line.as_bytes())?;
    }
    file.flush()
}

/// Read every valid record of `path`, stopping at (and dropping) the
/// first invalid line. A missing file reads as no records.
pub fn read_records(path: &Path) -> Vec<Record> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(record) = verify_line(line) else {
            break;
        };
        out.push(record);
    }
    out
}

fn verify_line(line: &str) -> Option<Record> {
    let value: Value = serde_json::from_str(line).ok()?;
    let sum = u64::from_str_radix(value.get("sum")?.as_str()?, 16).ok()?;
    let rec = value.get("rec")?;
    let payload = serde_json::to_string(rec).ok()?;
    if fnv1a64(payload.as_bytes()) != sum {
        return None;
    }
    if rec.get("v")?.as_u64()? != FORMAT_VERSION {
        return None;
    }
    Some(Record {
        kind: rec.get("kind")?.as_str()?.to_string(),
        body: rec.get("body")?.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use serde_json::json;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("np-chaos-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn f64_hex_round_trip_is_bit_exact() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -1.0 / 3.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ] {
            let back = hex_to_f64(&f64_to_hex(x)).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x}");
        }
        let xs = vec![0.1, 0.2, -0.3, 1e300];
        let back = hex_to_f64s(&f64s_to_hex(&xs)).unwrap();
        assert_eq!(
            xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert!(hex_to_f64("zz").is_none());
        assert!(hex_to_f64s("0102").is_none(), "not a multiple of 8 bytes");
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp("roundtrip");
        let chaos = Chaos::disabled();
        append_record(&path, "epoch", json!({"epoch": 0, "x": "aa"}), &chaos).unwrap();
        append_record(&path, "epoch", json!({"epoch": 1, "x": "bb"}), &chaos).unwrap();
        let recs = read_records(&path);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].kind, "epoch");
        assert_eq!(recs[1].body.get("epoch").unwrap().as_u64(), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        assert!(read_records(Path::new("/nonexistent/np-ckpt")).is_empty());
    }

    #[test]
    fn corrupt_line_drops_the_tail() {
        let path = tmp("corrupt");
        let chaos = Chaos::disabled();
        for i in 0..3 {
            append_record(&path, "epoch", json!({ "epoch": i }), &chaos).unwrap();
        }
        // Flip one byte inside the second record's checksum region.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let off = lines[0].len() + 1 + lines[1].len() - 3;
        unsafe { text.as_bytes_mut()[off] = b'!' };
        std::fs::write(&path, &text).unwrap();
        let recs = read_records(&path);
        assert_eq!(recs.len(), 1, "records after the corrupt one are dropped");
        assert_eq!(recs[0].body.get("epoch").unwrap().as_u64(), Some(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_truncation_tears_the_last_record() {
        let path = tmp("torn");
        let chaos = Chaos::new(FaultPlan::parse("truncate-checkpoint@2").unwrap());
        for i in 0..3 {
            append_record(&path, "epoch", json!({ "epoch": i }), &chaos).unwrap();
        }
        assert_eq!(chaos.fired(FaultClass::TruncateCheckpoint), 1);
        let recs = read_records(&path);
        assert_eq!(recs.len(), 2, "the torn third record is dropped");
        // Appending after a torn write corrupts from the tear onward but
        // never the records before it.
        append_record(&path, "epoch", json!({"epoch": 3}), &chaos).unwrap();
        assert_eq!(read_records(&path).len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let path = tmp("version");
        let payload = r#"{"v":999,"kind":"epoch","body":{}}"#;
        let line = format!(
            "{{\"sum\":\"{:016x}\",\"rec\":{payload}}}\n",
            fnv1a64(payload.as_bytes())
        );
        std::fs::write(&path, line).unwrap();
        assert!(read_records(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
