//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a shared flag threaded from a request's owner
//! (a serve daemon handling `cancel`, a CLI signal handler) down into
//! the long-running planning loops. The loops never block on it — they
//! poll at their deterministic boundaries (supervisor stage entry and
//! retry, trainer epoch, branch-and-bound deadline checks via
//! `StageCtx::exhausted`), so a cancelled run always stops on a
//! complete, checkpointable unit of work and a resume stays bit-exact.
//!
//! The token lives in this crate (not np-supervisor) because it is the
//! lowest layer both the supervisor and the RL trainer depend on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag; `Default` makes
/// a fresh, un-cancelled token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether two tokens share one flag (tests and sanity checks).
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.same_as(&b));
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "cancel is visible through every clone");
        a.cancel();
        assert!(b.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert!(!a.same_as(&b));
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let t = token.clone();
        let h = std::thread::spawn(move || {
            while !t.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(h.join().unwrap());
    }
}
