//! Deterministic fault injection for the NeuroPlan stack.
//!
//! A [`FaultPlan`] names, per fault class, *which occurrences* of that
//! class's trigger point should fire: the `k`-th simplex factorization,
//! the `k`-th pool task, the `k`-th trainer epoch, and so on. Trigger
//! points are counted deterministically by the instrumented code, so a
//! given plan injects the same faults at the same places on every run —
//! chaos tests are ordinary reproducible tests.
//!
//! The plan comes from the `NP_CHAOS` environment variable (or the
//! `neuroplan --chaos <spec>` flag, which [`install`]s it
//! programmatically). The spec is a comma-separated list:
//!
//! ```text
//! seed=7,lp-singular@0,pool-panic@2-5,nan-grad%3,kill@4
//! ```
//!
//! * `seed=<u64>` — seeds the probabilistic triggers (default 0).
//! * `<class>@<n>` — fire on the `n`-th occurrence (0-indexed).
//! * `<class>@<a>-<b>` — fire on occurrences `a..=b`.
//! * `<class>%<p>` — fire on each occurrence with probability `p`% (a
//!   deterministic hash of `(seed, class, occurrence)`, not a clock).
//!
//! Fault classes: `lp-singular` (singular simplex basis), `nan-grad`
//! (NaN in the policy/value gradients), `pool-panic` (worker-thread
//! panic), `deadline` (solver wall-clock exhaustion), `truncate-checkpoint`
//! (torn checkpoint write), `kill` (hard process death at a checkpoint
//! boundary, for kill-and-resume tests), `link-flap` (a link bouncing
//! mid-replan), and the serve-daemon classes `client-disconnect`,
//! `slow-client` and `worker-death` (connection drops, stalled reads
//! and worker-thread deaths inside np-serve).
//!
//! Instrumented code asks [`Chaos::should_fire`] (serial trigger points:
//! each call is one occurrence) or [`Chaos::fires_at`] (parallel trigger
//! points: the occurrence index is supplied by the caller, so the answer
//! is independent of thread scheduling). A disabled handle — the default
//! everywhere — answers `false` without any atomic traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

pub mod cancel;
pub mod checkpoint;
pub mod lock;
pub mod signals;

pub use cancel::CancelToken;
pub use lock::{DirLock, LockError};

/// The injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A singular basis inside the simplex factorization.
    LpSingular,
    /// A NaN poisoning the agent's parameters after a gradient step.
    NanGrad,
    /// A panic on a pool worker thread before it runs its claimed task.
    PoolPanic,
    /// Premature wall-clock exhaustion inside the branch-and-bound loop.
    Deadline,
    /// A torn (half-written) checkpoint record.
    TruncateCheckpoint,
    /// Hard process death (panic) at a checkpoint boundary.
    Kill,
    /// A link repeatedly going down and back up mid-replan: the replan
    /// loop answers a fire by removing the flapping link, re-planning,
    /// re-adding it and re-planning again — both perturbation paths of
    /// the churn engine under one fault.
    LinkFlap,
    /// A serve client vanishing mid-exchange: the connection drops
    /// before the response is written. The request itself must keep
    /// running and stay retrievable on reconnect.
    ClientDisconnect,
    /// A serve client stalling mid-frame: the read blocks past the
    /// server's patience. The connection is shed without disturbing the
    /// daemon or any in-flight solve.
    SlowClient,
    /// A serve worker thread dying mid-solve. The daemon replaces the
    /// worker and the claimed request is re-queued (once) and resumed
    /// from its checkpoint.
    WorkerDeath,
}

const NUM_CLASSES: usize = 10;

impl FaultClass {
    /// Every class, in spec order.
    pub const ALL: [FaultClass; NUM_CLASSES] = [
        FaultClass::LpSingular,
        FaultClass::NanGrad,
        FaultClass::PoolPanic,
        FaultClass::Deadline,
        FaultClass::TruncateCheckpoint,
        FaultClass::Kill,
        FaultClass::LinkFlap,
        FaultClass::ClientDisconnect,
        FaultClass::SlowClient,
        FaultClass::WorkerDeath,
    ];

    /// The spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::LpSingular => "lp-singular",
            FaultClass::NanGrad => "nan-grad",
            FaultClass::PoolPanic => "pool-panic",
            FaultClass::Deadline => "deadline",
            FaultClass::TruncateCheckpoint => "truncate-checkpoint",
            FaultClass::Kill => "kill",
            FaultClass::LinkFlap => "link-flap",
            FaultClass::ClientDisconnect => "client-disconnect",
            FaultClass::SlowClient => "slow-client",
            FaultClass::WorkerDeath => "worker-death",
        }
    }

    /// Inverse of [`FaultClass::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        match self {
            FaultClass::LpSingular => 0,
            FaultClass::NanGrad => 1,
            FaultClass::PoolPanic => 2,
            FaultClass::Deadline => 3,
            FaultClass::TruncateCheckpoint => 4,
            FaultClass::Kill => 5,
            FaultClass::LinkFlap => 6,
            FaultClass::ClientDisconnect => 7,
            FaultClass::SlowClient => 8,
            FaultClass::WorkerDeath => 9,
        }
    }
}

/// A malformed chaos spec, with the offending token preserved so
/// callers can report *which* part of the spec is wrong.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosError {
    /// `seed=<x>` where `<x>` is not a u64.
    BadSeed { token: String },
    /// A fault-class name outside [`FaultClass::ALL`].
    UnknownClass { name: String },
    /// `class@<occ>` where `<occ>` is not a u64.
    BadOccurrence { token: String },
    /// `class@a-b` with `a > b`.
    EmptyRange { token: String },
    /// `class%<p>` where `<p>` is not a number.
    BadProbability { token: String },
    /// `class%<p>` with `<p>` outside `[0, 100]`.
    ProbabilityOutOfRange { token: String, value: f64 },
    /// A token matching none of the grammar's productions.
    UnrecognizedToken { token: String },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid chaos spec: ")?;
        match self {
            ChaosError::BadSeed { token } => write!(f, "bad seed in `{token}`"),
            ChaosError::UnknownClass { name } => write!(f, "unknown fault class `{name}`"),
            ChaosError::BadOccurrence { token } => write!(f, "bad occurrence in `{token}`"),
            ChaosError::EmptyRange { token } => write!(f, "empty range in `{token}`"),
            ChaosError::BadProbability { token } => write!(f, "bad probability in `{token}`"),
            ChaosError::ProbabilityOutOfRange { token, value } => {
                write!(f, "probability {value} out of [0,100] in `{token}`")
            }
            ChaosError::UnrecognizedToken { token } => write!(f, "unrecognized token `{token}`"),
        }
    }
}

impl std::error::Error for ChaosError {}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    /// Fire on exactly this occurrence.
    At(u64),
    /// Fire on every occurrence in the inclusive range.
    Range(u64, u64),
    /// Fire on each occurrence with this probability (0..=1), decided by
    /// a hash of `(seed, class, occurrence)`.
    Prob(f64),
}

/// A parsed fault plan: the seed plus per-class triggers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the probabilistic triggers.
    pub seed: u64,
    triggers: Vec<(FaultClass, Trigger)>,
}

impl FaultPlan {
    /// Parse a spec string (see the crate docs for the grammar). An empty
    /// or all-whitespace spec parses to an empty plan.
    pub fn parse(spec: &str) -> Result<Self, ChaosError> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(',') {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(value) = token.strip_prefix("seed=") {
                plan.seed = value.parse().map_err(|_| ChaosError::BadSeed {
                    token: token.to_string(),
                })?;
            } else if let Some((name, occ)) = token.split_once('@') {
                let class =
                    FaultClass::from_name(name).ok_or_else(|| ChaosError::UnknownClass {
                        name: name.to_string(),
                    })?;
                let trig = if let Some((a, b)) = occ.split_once('-') {
                    let bad = |_| ChaosError::BadOccurrence {
                        token: token.to_string(),
                    };
                    let a = a.parse().map_err(bad)?;
                    let b = b.parse().map_err(bad)?;
                    if a > b {
                        return Err(ChaosError::EmptyRange {
                            token: token.to_string(),
                        });
                    }
                    Trigger::Range(a, b)
                } else {
                    Trigger::At(occ.parse().map_err(|_| ChaosError::BadOccurrence {
                        token: token.to_string(),
                    })?)
                };
                plan.triggers.push((class, trig));
            } else if let Some((name, pct)) = token.split_once('%') {
                let class =
                    FaultClass::from_name(name).ok_or_else(|| ChaosError::UnknownClass {
                        name: name.to_string(),
                    })?;
                let p: f64 = pct.parse().map_err(|_| ChaosError::BadProbability {
                    token: token.to_string(),
                })?;
                if !(0.0..=100.0).contains(&p) {
                    return Err(ChaosError::ProbabilityOutOfRange {
                        token: token.to_string(),
                        value: p,
                    });
                }
                plan.triggers.push((class, Trigger::Prob(p / 100.0)));
            } else {
                return Err(ChaosError::UnrecognizedToken {
                    token: token.to_string(),
                });
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Inner {
    plan: FaultPlan,
    counters: [AtomicU64; NUM_CLASSES],
    fired: [AtomicU64; NUM_CLASSES],
}

/// A handle to a fault plan (or to nothing — the default). Cheap to
/// clone and share; all counters are process-wide per handle.
#[derive(Clone, Default)]
pub struct Chaos {
    inner: Option<Arc<Inner>>,
}

impl Chaos {
    /// The inert handle: never fires, costs nothing.
    pub fn disabled() -> Self {
        Chaos { inner: None }
    }

    /// An active handle for `plan`. An empty plan still counts trigger
    /// points (useful for tests) but never fires.
    pub fn new(plan: FaultPlan) -> Self {
        Chaos {
            inner: Some(Arc::new(Inner {
                plan,
                counters: Default::default(),
                fired: Default::default(),
            })),
        }
    }

    /// Whether any plan is attached.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    fn decide(&self, inner: &Inner, class: FaultClass, occurrence: u64) -> bool {
        let mut fire = false;
        for &(c, trig) in &inner.plan.triggers {
            if c != class {
                continue;
            }
            fire |= match trig {
                Trigger::At(n) => occurrence == n,
                Trigger::Range(a, b) => (a..=b).contains(&occurrence),
                Trigger::Prob(p) => {
                    let h = splitmix64(
                        inner.plan.seed
                            ^ (class.index() as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)
                            ^ occurrence.wrapping_mul(0xe703_7ed1_a0b4_28db),
                    );
                    ((h >> 11) as f64) / ((1u64 << 53) as f64) < p
                }
            };
            if fire {
                break;
            }
        }
        if fire {
            inner.fired[class.index()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Serial trigger point: each call is the next occurrence of `class`.
    /// Only meaningful where calls happen in a deterministic order.
    pub fn should_fire(&self, class: FaultClass) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let occurrence = inner.counters[class.index()].fetch_add(1, Ordering::Relaxed);
        self.decide(inner, class, occurrence)
    }

    /// Parallel trigger point: the caller supplies the occurrence index
    /// (e.g. the pool task index), so the answer is a pure function of
    /// the plan and the index — independent of thread scheduling.
    pub fn fires_at(&self, class: FaultClass, occurrence: u64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        self.decide(inner, class, occurrence)
    }

    /// How many times `class` has fired through this handle.
    pub fn fired(&self, class: FaultClass) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.fired[class.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// `(class name, fired count)` for every class that fired at least
    /// once — the CLI prints this at exit.
    pub fn summary(&self) -> Vec<(&'static str, u64)> {
        FaultClass::ALL
            .into_iter()
            .filter_map(|c| {
                let n = self.fired(c);
                (n > 0).then_some((c.name(), n))
            })
            .collect()
    }
}

static GLOBAL: OnceLock<Chaos> = OnceLock::new();

/// The process-wide chaos handle. First use initializes it from the
/// `NP_CHAOS` environment variable; unset/empty means disabled. A
/// malformed variable is reported on stderr and treated as disabled
/// (library code must not abort the host process — the CLI validates its
/// `--chaos` flag separately and exits with a proper error).
pub fn global() -> &'static Chaos {
    GLOBAL.get_or_init(|| match std::env::var("NP_CHAOS") {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => Chaos::new(plan),
            Err(e) => {
                eprintln!("warning: ignoring NP_CHAOS: {e}");
                Chaos::disabled()
            }
        },
        _ => Chaos::disabled(),
    })
}

/// Install a plan as the process-wide handle (the CLI's `--chaos`).
/// Returns `false` if the global handle was already initialized — the
/// caller should install before any instrumented code runs.
pub fn install(plan: FaultPlan) -> bool {
    GLOBAL.set(Chaos::new(plan)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_parses_to_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.seed, 0);
        assert!(FaultPlan::parse("  , ,").unwrap().is_empty());
    }

    #[test]
    fn spec_grammar_round_trips_every_form() {
        let plan =
            FaultPlan::parse("seed=42,lp-singular@0,pool-panic@2-5,nan-grad%3.5,kill@4").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.triggers.len(), 4);
        assert_eq!(plan.triggers[0], (FaultClass::LpSingular, Trigger::At(0)));
        assert_eq!(
            plan.triggers[1],
            (FaultClass::PoolPanic, Trigger::Range(2, 5))
        );
        assert_eq!(
            plan.triggers[2],
            (FaultClass::NanGrad, Trigger::Prob(0.035))
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "frobnicate@3",
            "lp-singular@x",
            "lp-singular@5-2",
            "nan-grad%200",
            "seed=abc",
            "lp-singular",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn malformed_specs_yield_typed_errors_not_panics() {
        assert_eq!(
            FaultPlan::parse("frobnicate@3"),
            Err(ChaosError::UnknownClass {
                name: "frobnicate".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("cosmic-ray%50"),
            Err(ChaosError::UnknownClass {
                name: "cosmic-ray".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("deadline%150"),
            Err(ChaosError::ProbabilityOutOfRange {
                token: "deadline%150".to_string(),
                value: 150.0
            })
        );
        assert_eq!(
            FaultPlan::parse("deadline%-1"),
            Err(ChaosError::ProbabilityOutOfRange {
                token: "deadline%-1".to_string(),
                value: -1.0
            })
        );
        assert_eq!(
            FaultPlan::parse("deadline%"),
            Err(ChaosError::BadProbability {
                token: "deadline%".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("kill@5-2"),
            Err(ChaosError::EmptyRange {
                token: "kill@5-2".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("kill@two"),
            Err(ChaosError::BadOccurrence {
                token: "kill@two".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("seed=minus-one"),
            Err(ChaosError::BadSeed {
                token: "seed=minus-one".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("kill"),
            Err(ChaosError::UnrecognizedToken {
                token: "kill".to_string()
            })
        );
        // Display keeps the offending token visible for CLI reporting.
        let msg = FaultPlan::parse("deadline%150").unwrap_err().to_string();
        assert!(msg.contains("deadline%150"), "{msg}");
    }

    #[test]
    fn link_flap_is_a_first_class_fault() {
        assert_eq!(FaultClass::LinkFlap.name(), "link-flap");
        assert_eq!(
            FaultClass::from_name("link-flap"),
            Some(FaultClass::LinkFlap)
        );
        assert_eq!(FaultClass::ALL.len(), NUM_CLASSES);
        let chaos = Chaos::new(FaultPlan::parse("seed=3,link-flap@1-2").unwrap());
        let fires: Vec<bool> = (0..4)
            .map(|_| chaos.should_fire(FaultClass::LinkFlap))
            .collect();
        assert_eq!(fires, [false, true, true, false]);
        assert_eq!(chaos.fired(FaultClass::LinkFlap), 2);
        // The summary counts it like every other class.
        assert_eq!(chaos.fired(FaultClass::Kill), 0);
    }

    #[test]
    fn serve_fault_classes_are_first_class() {
        for (class, name) in [
            (FaultClass::ClientDisconnect, "client-disconnect"),
            (FaultClass::SlowClient, "slow-client"),
            (FaultClass::WorkerDeath, "worker-death"),
        ] {
            assert_eq!(class.name(), name);
            assert_eq!(FaultClass::from_name(name), Some(class));
        }
        assert_eq!(FaultClass::ALL.len(), NUM_CLASSES);
        // Occurrence counters are per class: a worker-death trigger never
        // bleeds into the connection-level classes.
        let chaos = Chaos::new(
            FaultPlan::parse("worker-death@0,client-disconnect@1,slow-client@0").unwrap(),
        );
        assert!(chaos.should_fire(FaultClass::WorkerDeath));
        assert!(!chaos.should_fire(FaultClass::ClientDisconnect));
        assert!(chaos.should_fire(FaultClass::ClientDisconnect));
        assert!(chaos.should_fire(FaultClass::SlowClient));
        assert_eq!(
            chaos.summary(),
            vec![
                ("client-disconnect", 1),
                ("slow-client", 1),
                ("worker-death", 1)
            ]
        );
    }

    #[test]
    fn spec_parser_edge_cases() {
        // Whitespace and empty tokens are tolerated anywhere.
        let plan = FaultPlan::parse("  , seed=9 ,, link-flap@2 ,  ").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.triggers, vec![(FaultClass::LinkFlap, Trigger::At(2))]);
        // A single-point range is allowed and equals its endpoints.
        let plan = FaultPlan::parse("link-flap@3-3").unwrap();
        assert_eq!(
            plan.triggers,
            vec![(FaultClass::LinkFlap, Trigger::Range(3, 3))]
        );
        // The last seed token wins (specs are processed left to right).
        assert_eq!(FaultPlan::parse("seed=1,seed=2").unwrap().seed, 2);
        // An empty class name is an unknown class, not a panic.
        assert_eq!(
            FaultPlan::parse("@3"),
            Err(ChaosError::UnknownClass {
                name: String::new()
            })
        );
        assert_eq!(
            FaultPlan::parse("%50"),
            Err(ChaosError::UnknownClass {
                name: String::new()
            })
        );
        // Empty seed value and empty occurrence are typed errors.
        assert!(matches!(
            FaultPlan::parse("seed="),
            Err(ChaosError::BadSeed { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("link-flap@"),
            Err(ChaosError::BadOccurrence { .. })
        ));
        // Inner whitespace does not silently parse.
        assert!(matches!(
            FaultPlan::parse("link-flap@ 2"),
            Err(ChaosError::BadOccurrence { .. })
        ));
        // A huge occurrence (u64::MAX) round-trips.
        let plan = FaultPlan::parse(&format!("kill@{}", u64::MAX)).unwrap();
        assert_eq!(
            plan.triggers,
            vec![(FaultClass::Kill, Trigger::At(u64::MAX))]
        );
        // Fractional percentages parse and stay in [0, 1].
        let plan = FaultPlan::parse("nan-grad%0.5").unwrap();
        assert_eq!(
            plan.triggers,
            vec![(FaultClass::NanGrad, Trigger::Prob(0.005))]
        );
    }

    #[test]
    fn overlapping_ranges_fire_once_per_occurrence() {
        // Two ranges overlapping on 2..=3: an occurrence in the overlap
        // still fires exactly once (triggers are OR-ed, not summed).
        let chaos = Chaos::new(FaultPlan::parse("deadline@1-3,deadline@2-4").unwrap());
        let fires: Vec<bool> = (0..6)
            .map(|_| chaos.should_fire(FaultClass::Deadline))
            .collect();
        assert_eq!(fires, [false, true, true, true, true, false]);
        assert_eq!(chaos.fired(FaultClass::Deadline), 4);
    }

    #[test]
    fn probability_bounds_are_inclusive() {
        // 0% never fires, 100% always fires — both are valid specs.
        let never = Chaos::new(FaultPlan::parse("nan-grad%0").unwrap());
        let always = Chaos::new(FaultPlan::parse("nan-grad%100").unwrap());
        for i in 0..50 {
            assert!(!never.fires_at(FaultClass::NanGrad, i));
            assert!(always.fires_at(FaultClass::NanGrad, i));
        }
    }

    #[test]
    fn at_trigger_fires_exactly_once() {
        let chaos = Chaos::new(FaultPlan::parse("deadline@2").unwrap());
        let fires: Vec<bool> = (0..5)
            .map(|_| chaos.should_fire(FaultClass::Deadline))
            .collect();
        assert_eq!(fires, [false, false, true, false, false]);
        assert_eq!(chaos.fired(FaultClass::Deadline), 1);
        assert_eq!(chaos.fired(FaultClass::Kill), 0);
    }

    #[test]
    fn range_trigger_fires_on_every_occurrence_in_range() {
        let chaos = Chaos::new(FaultPlan::parse("pool-panic@1-3").unwrap());
        let fires: Vec<bool> = (0..5)
            .map(|i| chaos.fires_at(FaultClass::PoolPanic, i))
            .collect();
        assert_eq!(fires, [false, true, true, true, false]);
        assert_eq!(chaos.fired(FaultClass::PoolPanic), 3);
    }

    #[test]
    fn probability_trigger_is_deterministic_and_roughly_calibrated() {
        let sample = |seed: u64| -> Vec<bool> {
            let chaos = Chaos::new(FaultPlan::parse(&format!("seed={seed},nan-grad%20")).unwrap());
            (0..1000)
                .map(|i| chaos.fires_at(FaultClass::NanGrad, i))
                .collect()
        };
        let a = sample(7);
        assert_eq!(a, sample(7), "same seed, same firing pattern");
        assert_ne!(a, sample(8), "different seed, different pattern");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((120..280).contains(&hits), "20% of 1000 ≈ {hits}");
    }

    #[test]
    fn disabled_handle_never_fires() {
        let chaos = Chaos::disabled();
        assert!(!chaos.is_active());
        assert!(!chaos.should_fire(FaultClass::Kill));
        assert!(!chaos.fires_at(FaultClass::Kill, 0));
        assert!(chaos.summary().is_empty());
    }

    #[test]
    fn summary_lists_only_fired_classes() {
        let chaos = Chaos::new(FaultPlan::parse("kill@0,deadline@9").unwrap());
        chaos.should_fire(FaultClass::Kill);
        chaos.should_fire(FaultClass::Deadline);
        assert_eq!(chaos.summary(), vec![("kill", 1)]);
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(c.name()), Some(c));
        }
        assert_eq!(FaultClass::from_name("nope"), None);
    }
}
