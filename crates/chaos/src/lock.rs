//! Checkpoint-directory lock files.
//!
//! A checkpoint/journal chain is an append-only record of one logical
//! run; two writers appending concurrently interleave records and
//! corrupt the chain for both. [`DirLock::acquire`] claims a directory
//! by creating `<dir>/.np-lock` exclusively (`create_new`, an atomic
//! operation on every filesystem we care about) with the owner's PID
//! inside. Dropping the guard removes the file.
//!
//! A crashed owner leaves its lock behind, so acquisition does stale
//! detection: if the lock names a PID that is provably dead (no
//! `/proc/<pid>` on a system that has `/proc`), the lock is reclaimed.
//! When liveness cannot be decided the lock is honored and the caller
//! gets a [`LockError::Held`] naming the owner — a clear error beats a
//! corrupted chain.

use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the lock inside the protected directory.
pub const LOCK_FILE: &str = ".np-lock";

/// Why a directory lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// The lock file path.
        path: PathBuf,
        /// PID recorded in the lock file (0 when unreadable).
        owner_pid: u32,
    },
    /// Filesystem trouble creating or inspecting the lock.
    Io(std::io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { path, owner_pid } => write!(
                f,
                "checkpoint directory is locked by pid {owner_pid} ({}); \
                 if that process is gone, delete the lock file to recover",
                path.display()
            ),
            LockError::Io(e) => write!(f, "cannot lock checkpoint directory: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// An exclusive claim on a checkpoint directory. Released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Claim `dir` for this process, creating the directory if needed.
    /// A stale lock (provably dead owner) is reclaimed; a live one is a
    /// [`LockError::Held`].
    pub fn acquire(dir: &Path) -> Result<DirLock, LockError> {
        std::fs::create_dir_all(dir).map_err(LockError::Io)?;
        let path = dir.join(LOCK_FILE);
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = writeln!(file, "{{\"pid\":{}}}", std::process::id());
                    let _ = file.flush();
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner_pid = read_owner(&path);
                    if pid_is_dead(owner_pid) {
                        // Stale: the owner is gone. Remove and retry the
                        // exclusive create (another reclaimer may win the
                        // race, in which case the second pass reports it).
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Err(LockError::Held { path, owner_pid });
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Held {
            owner_pid: read_owner(&path),
            path,
        })
    }

    /// The lock file this guard holds.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn read_owner(path: &Path) -> u32 {
    let Ok(body) = std::fs::read_to_string(path) else {
        return 0;
    };
    let Ok(v) = serde_json::from_str::<serde_json::Value>(&body) else {
        return 0;
    };
    v.get("pid").and_then(|p| p.as_u64()).unwrap_or(0) as u32
}

/// Provably dead: the system exposes `/proc` and the PID's entry is
/// absent. An unreadable owner (pid 0) or a system without `/proc`
/// cannot be decided, so the lock is treated as live.
fn pid_is_dead(pid: u32) -> bool {
    if pid == 0 || pid == std::process::id() {
        return false;
    }
    let proc_root = Path::new("/proc");
    proc_root.is_dir() && !proc_root.join(pid.to_string()).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("np-lock-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acquire_release_acquire() {
        let dir = tmp("cycle");
        let lock = DirLock::acquire(&dir).expect("first acquire");
        assert!(lock.path().exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop removes the file");
        let _again = DirLock::acquire(&dir).expect("re-acquire after release");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_acquire_is_held_with_the_owner_pid() {
        let dir = tmp("held");
        let _lock = DirLock::acquire(&dir).expect("first acquire");
        match DirLock::acquire(&dir) {
            Err(LockError::Held { owner_pid, path }) => {
                assert_eq!(owner_pid, std::process::id());
                assert!(path.ends_with(LOCK_FILE));
                let msg = LockError::Held { path, owner_pid }.to_string();
                assert!(msg.contains(&owner_pid.to_string()), "{msg}");
            }
            other => panic!("expected Held, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_reclaimed() {
        if !Path::new("/proc").is_dir() {
            return; // liveness is undecidable here; covered on Linux CI
        }
        let dir = tmp("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // A PID that cannot be alive: beyond the default pid_max.
        std::fs::write(dir.join(LOCK_FILE), "{\"pid\":4194999}").unwrap();
        let lock = DirLock::acquire(&dir).expect("stale lock reclaimed");
        drop(lock);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_lock_is_honored_not_reclaimed() {
        let dir = tmp("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "not json").unwrap();
        match DirLock::acquire(&dir) {
            Err(LockError::Held { owner_pid, .. }) => assert_eq!(owner_pid, 0),
            other => panic!("expected Held, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
