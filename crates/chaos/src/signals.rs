//! Graceful SIGINT/SIGTERM handling.
//!
//! [`install`] registers handlers for `SIGINT` and `SIGTERM` that do
//! nothing but set atomics: a process-wide [`CancelToken`] (polled by
//! the supervisor/trainer at their stage and epoch boundaries) and the
//! signal number. The interrupted run then winds down cooperatively —
//! flushing telemetry and leaving a complete checkpoint — instead of
//! dying mid-write, and exits with the conventional `128 + signo` code
//! so callers can tell an interrupt (130) from a termination (143)
//! from a real failure.
//!
//! There is no vendored `libc` crate; `signal(2)` is declared directly
//! against the C library std already links. Storing relaxed atomics is
//! async-signal-safe, which is all the handler does. On non-Unix
//! targets [`install`] is a no-op returning a token that never fires.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::OnceLock;

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill).
pub const SIGTERM: i32 = 15;

static RECEIVED: AtomicI32 = AtomicI32::new(0);
static TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// The conventional shell exit code for death-by-signal: `128 + signo`
/// (130 for SIGINT, 143 for SIGTERM).
pub fn exit_code(signo: i32) -> i32 {
    128 + signo
}

/// Which signal has arrived, if any.
pub fn received() -> Option<i32> {
    match RECEIVED.load(Ordering::Acquire) {
        0 => None,
        s => Some(s),
    }
}

/// Install the handlers (idempotent) and return the token they cancel.
/// Every call returns the same process-wide token.
pub fn install() -> CancelToken {
    static HANDLERS: std::sync::Once = std::sync::Once::new();
    // The token must exist before the handler can observe a signal.
    let token = TOKEN.get_or_init(CancelToken::new).clone();
    HANDLERS.call_once(install_native);
    token
}

#[cfg(unix)]
fn install_native() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(signo: i32) {
        RECEIVED.store(signo, Ordering::Release);
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_native() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_shell_convention() {
        assert_eq!(exit_code(SIGINT), 130);
        assert_eq!(exit_code(SIGTERM), 143);
    }

    #[test]
    fn install_is_idempotent_and_returns_one_token() {
        let a = install();
        let b = install();
        assert!(a.same_as(&b), "one process-wide token");
        // Real signal delivery is exercised by the serve subprocess
        // tests; here we only prove the plumbing does not misfire.
        assert_eq!(received(), None);
        assert!(!a.is_cancelled());
    }
}
